package spmat

import (
	"encoding/binary"
	"math"
	"testing"
)

// overflowHeaderSeed reproduces the wireBytes int32 overflow: a dense header
// with cols == MaxInt32 made `8*int64(cols+1)` wrap negative, so a buffer of
// exactly 25 bytes claiming nnz = 1431655766 satisfied the (corrupted) size
// check and the decoder went on to allocate a negative-length ColPtr slice
// and panic. The hardened decoder must reject it with an error.
func overflowHeaderSeed() []byte {
	buf := make([]byte, 25)
	binary.LittleEndian.PutUint32(buf[0:], 1)                     // rows
	binary.LittleEndian.PutUint32(buf[4:], uint32(math.MaxInt32)) // cols
	binary.LittleEndian.PutUint64(buf[8:], 1431655766)            // nnz
	return buf
}

// badRowSeed reproduces the missing row-index validation: a structurally
// valid dense buffer whose single entry names row 7 of a 2-row matrix. The
// unhardened decoder accepted it and kernels indexed out of bounds later.
func badRowSeed() []byte {
	m := New(2, 2)
	m.ColPtr = []int64{0, 1, 1}
	m.RowIdx = []int32{0}
	m.Val = []float64{1.5}
	buf := m.Serialize()
	binary.LittleEndian.PutUint32(buf[serialHeader+8*3:], 7) // row index after 3 colptrs
	return buf
}

func FuzzDeserializeMatrix(f *testing.F) {
	f.Add([]byte{})
	f.Add(randomNNZCSC(f, 8, 200, 30, 41).Serialize()) // hypersparse wire
	f.Add(randomNNZCSC(f, 16, 12, 60, 42).Serialize()) // dense wire
	f.Add(overflowHeaderSeed())
	f.Add(badRowSeed())

	f.Fuzz(func(t *testing.T, buf []byte) {
		m, err := DeserializeMatrix(buf)

		// The arena decode must agree with the heap decode exactly: same
		// accept/reject decision, same matrix.
		var a Arena
		am, aerr := DeserializeMatrixInto(buf, &a)
		if (err == nil) != (aerr == nil) {
			t.Fatalf("heap err %v vs arena err %v", err, aerr)
		}
		if err != nil {
			return // rejected: nothing else to check
		}
		if !Equal(m.ToCSC(), am.ToCSC()) {
			t.Fatal("arena decode differs from heap decode")
		}

		// Whatever the decoder accepts must be structurally sound (in-range
		// indices above all — the bug class the hardening closed). The wire's
		// sorted flag is the sender's claim, not validated at decode, so it is
		// cleared before the structural check.
		switch mm := m.(type) {
		case *CSC:
			mm.SortedCols = false
			if verr := mm.Validate(); verr != nil {
				t.Fatalf("decoder accepted invalid CSC: %v", verr)
			}
		case *DCSC:
			mm.SortedCols = false
			if verr := mm.Validate(); verr != nil {
				t.Fatalf("decoder accepted invalid DCSC: %v", verr)
			}
		}

		// Round-trip through the canonical encoding. The input may use the
		// non-canonical encoding for its occupancy (the flag is the sender's
		// choice), so compare matrices, not bytes.
		enc := m.Serialize()
		m2, err := DeserializeMatrix(enc)
		if err != nil {
			t.Fatalf("re-encoded matrix rejected: %v", err)
		}
		if !Equal(m.ToCSC(), m2.ToCSC()) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
