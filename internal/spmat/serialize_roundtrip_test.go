package spmat

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSerializeFormatIndependent: both in-memory formats of the same logical
// matrix must produce byte-identical wire encodings (and CommBytes must
// equal the encoded length) across shapes spanning the 2× hypersparse
// threshold — the property that makes communication metering independent of
// the format knob.
func TestSerializeFormatIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < 60; it++ {
		rows := int32(1 + rng.Intn(64))
		cols := int32(1 + rng.Intn(512))
		nnz := rng.Intn(3 * int(cols) / 2)
		m := randomNNZCSC(t, rows, cols, nnz, int64(it))
		if rng.Intn(2) == 0 {
			m.SortedCols = false // exercise the flag bit
		}
		d := m.ToDCSC()

		cb := m.Serialize()
		db := d.Serialize()
		if !bytes.Equal(cb, db) {
			t.Fatalf("it %d (%v): CSC and DCSC wire bytes differ", it, m)
		}
		if int64(len(cb)) != m.CommBytes() || m.CommBytes() != d.CommBytes() {
			t.Fatalf("it %d (%v): CommBytes %d/%d vs encoded %d", it, m, m.CommBytes(), d.CommBytes(), len(cb))
		}
	}
}

// TestDeserializeRoundTripAllFormats: wire encodings × in-memory formats.
// Every decode target must reproduce the logical matrix; DeserializeMatrix
// must follow the wire flag (hypersparse buffers decode straight into DCSC,
// dense ones into CSC).
func TestDeserializeRoundTripAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 60; it++ {
		rows := int32(1 + rng.Intn(48))
		cols := int32(1 + rng.Intn(400))
		nnz := rng.Intn(2 * int(cols))
		m := randomNNZCSC(t, rows, cols, nnz, int64(1000+it))
		hyper := Hypersparse(m.NonEmptyCols(), m.Cols)

		for _, src := range []Matrix{m, m.ToDCSC()} {
			buf := src.Serialize()

			// Historical CSC decode.
			c, err := Deserialize(buf)
			if err != nil {
				t.Fatalf("it %d: Deserialize: %v", it, err)
			}
			if !Equal(m, c) {
				t.Fatalf("it %d: CSC decode differs", it)
			}

			// Wire-following decode: format matches the encoding flag.
			got, err := DeserializeMatrix(buf)
			if err != nil {
				t.Fatalf("it %d: DeserializeMatrix: %v", it, err)
			}
			wantFmt := FormatCSC
			if hyper {
				wantFmt = FormatDCSC
			}
			if got.Format() != wantFmt {
				t.Fatalf("it %d: DeserializeMatrix produced %v for hyper=%v wire", it, got.Format(), hyper)
			}
			if !Equal(m, got.ToCSC()) {
				t.Fatalf("it %d: DeserializeMatrix decode differs", it)
			}
			if d, ok := got.(*DCSC); ok {
				if err := d.Validate(); err != nil {
					t.Fatalf("it %d: decoded DCSC invalid: %v", it, err)
				}
			}

			// Forced decodes.
			for _, f := range []Format{FormatCSC, FormatDCSC} {
				forced, err := DeserializeFormat(buf, f)
				if err != nil {
					t.Fatalf("it %d: DeserializeFormat(%v): %v", it, f, err)
				}
				if forced.Format() != f {
					t.Fatalf("it %d: DeserializeFormat(%v) produced %v", it, f, forced.Format())
				}
				if !Equal(m, forced.ToCSC()) {
					t.Fatalf("it %d: DeserializeFormat(%v) decode differs", it, f)
				}
			}
		}
	}
}

// TestDeserializeMatrixRejectsHostile mirrors the CSC decoder's hardening on
// the hypersparse path: truncation, unordered or out-of-range column lists,
// and count sums that disagree with the header must all error.
func TestDeserializeMatrixRejectsHostile(t *testing.T) {
	m := randomNNZCSC(t, 8, 200, 30, 5) // hypersparse → hyper wire encoding
	buf := m.Serialize()
	if buf[16]&2 == 0 {
		t.Fatal("test matrix unexpectedly dense on the wire")
	}
	if _, err := DeserializeMatrix(buf[:len(buf)-2]); err == nil {
		t.Error("truncated buffer accepted")
	}
	// Swap the first two column entries: columns out of order.
	bad := append([]byte(nil), buf...)
	copy(bad[serialHeader+4:], buf[serialHeader+12:serialHeader+20])
	copy(bad[serialHeader+12:], buf[serialHeader+4:serialHeader+12])
	if _, err := DeserializeMatrix(bad); err == nil {
		t.Error("unordered hypersparse columns accepted")
	}
	// Inflate one count: sum disagrees with nnz.
	bad2 := append([]byte(nil), buf...)
	bad2[serialHeader+8] ^= 0x01
	if _, err := DeserializeMatrix(bad2); err == nil {
		t.Error("count/nnz disagreement accepted")
	}

	// Dense encoding with a negative leading column pointer (would index
	// out of bounds on the first column access if accepted).
	dense := New(4, 4)
	dense.RowIdx = []int32{1, 2}
	dense.Val = []float64{2, 3}
	dense.ColPtr = []int64{0, 1, 2, 2, 2} // 2 of 4 columns occupied → dense wire
	db := dense.Serialize()
	if db[16]&2 != 0 {
		t.Fatal("dense test matrix unexpectedly hypersparse on the wire")
	}
	for i, v := range []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff} { // ColPtr[0] = -1
		db[serialHeader+i] = v
	}
	if _, err := DeserializeMatrix(db); err == nil {
		t.Error("negative leading column pointer accepted")
	}
}
