package spmat

import (
	"encoding/binary"
	"math"
	"testing"
)

// denseOverflowSeed is a 9-byte header claiming a MaxInt32×MaxInt32 dense
// matrix: rows·cols overflows int64 arithmetic done carelessly, and the
// hardened decoder must reject it by bounding the factors before multiplying.
func denseOverflowSeed() []byte {
	buf := make([]byte, denseHeader)
	binary.LittleEndian.PutUint32(buf[0:], uint32(math.MaxInt32))
	binary.LittleEndian.PutUint32(buf[4:], uint32(math.MaxInt32))
	return buf
}

// denseNegativeSeed claims negative dimensions.
func denseNegativeSeed() []byte {
	buf := make([]byte, denseHeader+8)
	binary.LittleEndian.PutUint32(buf[0:], 0x80000001)
	binary.LittleEndian.PutUint32(buf[4:], 1)
	return buf
}

func FuzzDeserializeDense(f *testing.F) {
	f.Add([]byte{})
	f.Add(NewDense(0, 0).Serialize())
	f.Add(randomDense(3, 4, 17).Serialize())
	f.Add(randomDense(16, 1, 18).Serialize())
	f.Add(denseOverflowSeed())
	f.Add(denseNegativeSeed())

	f.Fuzz(func(t *testing.T, buf []byte) {
		d, err := DeserializeDense(buf)
		if err != nil {
			return // rejected: nothing else to check
		}
		// Whatever the decoder accepts must be structurally sound: the value
		// slice length must match the header shape exactly, or later kernels
		// index out of bounds.
		if d.Rows < 0 || d.Cols < 0 {
			t.Fatalf("decoder accepted negative shape %dx%d", d.Rows, d.Cols)
		}
		if int64(len(d.Val)) != int64(d.Rows)*int64(d.Cols) {
			t.Fatalf("decoder accepted %dx%d with %d values", d.Rows, d.Cols, len(d.Val))
		}
		// Round-trip: re-encoding must be byte-identical (the dense wire
		// format is canonical — one encoding per matrix).
		enc := d.Serialize()
		if len(enc) != len(buf) {
			t.Fatalf("re-encoded length %d, input %d", len(enc), len(buf))
		}
		for i := range enc {
			if enc[i] != buf[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}
