package spmat

import (
	"bytes"
	"math/rand"
	"testing"
)

// subsetReference materializes the column subset the view promises: a copy of
// m with every unlisted column emptied.
func subsetReference(m *CSC, cols []int32) *CSC {
	keep := make(map[int32]bool, len(cols))
	for _, j := range cols {
		keep[j] = true
	}
	out := m.Clone()
	out.Filter(func(_, j int32, _ float64) bool { return keep[j] })
	return out
}

func TestRowSupport(t *testing.T) {
	m := randomNNZCSC(t, 64, 40, 90, 11)
	sup := RowSupport(m)
	seen := make([]bool, m.Rows)
	for _, r := range m.RowIdx {
		seen[r] = true
	}
	var want []int32
	for r, s := range seen {
		if s {
			want = append(want, int32(r))
		}
	}
	if len(sup) != len(want) {
		t.Fatalf("RowSupport returned %d rows, want %d", len(sup), len(want))
	}
	for i := range sup {
		if sup[i] != want[i] {
			t.Fatalf("RowSupport[%d] = %d, want %d", i, sup[i], want[i])
		}
	}
	// Support of a DCSC view of the same matrix must agree.
	dsup := RowSupport(m.ToDCSC())
	if len(dsup) != len(sup) {
		t.Fatalf("DCSC RowSupport size %d, want %d", len(dsup), len(sup))
	}
}

// TestColSubsetViewWire: the lazy view must serialize byte-identically to a
// materialized matrix with the unlisted columns emptied, CommBytes must equal
// the encoded length, and both in-memory formats of the source must agree —
// across shapes on both sides of the hypersparse wire threshold.
func TestColSubsetViewWire(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for it := 0; it < 60; it++ {
		rows := int32(1 + rng.Intn(48))
		cols := int32(1 + rng.Intn(300))
		nnz := rng.Intn(2 * int(cols))
		m := randomNNZCSC(t, rows, cols, nnz, int64(500+it))

		// A random ascending subset (sometimes empty, sometimes everything).
		var sub []int32
		for j := int32(0); j < cols; j++ {
			if rng.Intn(3) > 0 {
				sub = append(sub, j)
			}
		}

		ref := subsetReference(m, sub)
		want := ref.Serialize()

		for _, src := range []Matrix{m, m.ToDCSC()} {
			v := &ColSubsetView{M: src, Cols: sub}
			got := v.Serialize()
			if !bytes.Equal(got, want) {
				t.Fatalf("it %d (%v, %d cols kept): subset wire differs from materialized subset", it, src, len(sub))
			}
			if v.CommBytes() != int64(len(got)) {
				t.Fatalf("it %d: CommBytes %d, encoded %d", it, v.CommBytes(), len(got))
			}
			if v.NNZ() != ref.NNZ() {
				t.Fatalf("it %d: subset NNZ %d, want %d", it, v.NNZ(), ref.NNZ())
			}
			dec, err := DeserializeMatrix(got)
			if err != nil {
				t.Fatalf("it %d: decode subset: %v", it, err)
			}
			if !Equal(ref, dec.ToCSC()) {
				t.Fatalf("it %d: decoded subset differs", it)
			}
		}

		if !bytes.Equal(MatColSubsetSerialize(m, sub), want) {
			t.Fatalf("it %d: MatColSubsetSerialize differs from view", it)
		}
	}
}

// TestSerializeIntoReuse: SerializeInto must reuse a caller buffer with
// enough capacity (no allocation, same bytes) even when the buffer is dirty.
func TestSerializeIntoReuse(t *testing.T) {
	m := randomNNZCSC(t, 32, 200, 60, 3)
	sub := RowSupport(Transpose(m)) // any ascending in-range list
	v := &ColSubsetView{M: m, Cols: sub}
	want := v.Serialize()
	buf := make([]byte, len(want)+13)
	for i := range buf {
		buf[i] = 0xAA
	}
	got := (&ColSubsetView{M: m, Cols: sub}).SerializeInto(buf)
	if !bytes.Equal(got, want) {
		t.Fatal("SerializeInto into dirty buffer differs from Serialize")
	}
	if &got[0] != &buf[0] {
		t.Fatal("SerializeInto allocated despite sufficient capacity")
	}
}

// TestDeserializeMatrixInto: arena decodes must agree with heap decodes for
// both wire encodings, and a warmed-up arena must decode with zero heap
// allocations — the property the steady-state receive loop relies on.
func TestDeserializeMatrixInto(t *testing.T) {
	var a Arena
	rng := rand.New(rand.NewSource(8))
	for it := 0; it < 40; it++ {
		rows := int32(1 + rng.Intn(48))
		cols := int32(1 + rng.Intn(400))
		nnz := rng.Intn(2 * int(cols))
		m := randomNNZCSC(t, rows, cols, nnz, int64(2000+it))
		buf := m.Serialize()

		got, err := DeserializeMatrixInto(buf, &a)
		if err != nil {
			t.Fatalf("it %d: DeserializeMatrixInto: %v", it, err)
		}
		heap, err := DeserializeMatrix(buf)
		if err != nil {
			t.Fatalf("it %d: DeserializeMatrix: %v", it, err)
		}
		if got.Format() != heap.Format() {
			t.Fatalf("it %d: arena decode format %v, heap %v", it, got.Format(), heap.Format())
		}
		if !Equal(heap.ToCSC(), got.ToCSC()) {
			t.Fatalf("it %d: arena decode differs from heap decode", it)
		}
	}
}

func TestDeserializeMatrixIntoZeroAlloc(t *testing.T) {
	var a Arena
	hyper := randomNNZCSC(t, 16, 300, 40, 1).Serialize()
	dense := randomNNZCSC(t, 16, 20, 80, 2).Serialize()
	for _, tc := range []struct {
		name string
		buf  []byte
	}{{"hyper", hyper}, {"dense", dense}} {
		if _, err := DeserializeMatrixInto(tc.buf, &a); err != nil { // warm up
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := DeserializeMatrixInto(tc.buf, &a); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warmed arena decode allocates %.1f times per run, want 0", tc.name, allocs)
		}
	}
}

// TestNonEmptyColsInvalidation: the regression test for the stale-memo bug —
// a mutation after the memo is filled must not leave CommBytes metering the
// old occupancy, and Validate must catch a memo that was not invalidated.
func TestNonEmptyColsInvalidation(t *testing.T) {
	m := randomNNZCSC(t, 16, 120, 40, 9)
	before := m.CommBytes() // fills the memo
	m.Filter(func(_, j int32, _ float64) bool { return j%2 == 0 })
	if err := m.Validate(); err != nil {
		t.Fatalf("Filter left an inconsistent matrix: %v", err)
	}
	after := m.CommBytes()
	if want := m.Clone().CommBytes(); after != want {
		t.Fatalf("CommBytes after Filter = %d, fresh clone says %d (stale memo, was %d)", after, want, before)
	}

	// A mutator that forgets to invalidate must be caught by Validate.
	m2 := randomNNZCSC(t, 16, 120, 40, 10)
	m2.NonEmptyCols() // fill memo
	// Empty the last non-empty column by hand, bypassing Filter.
	for j := m2.Cols - 1; j >= 0; j-- {
		if m2.ColNNZ(j) > 0 && m2.ColPtr[j] == m2.NNZ()-m2.ColNNZ(j) {
			cut := m2.ColPtr[j]
			for k := j; k < m2.Cols; k++ {
				m2.ColPtr[k+1] = cut
			}
			m2.RowIdx = m2.RowIdx[:cut]
			m2.Val = m2.Val[:cut]
			break
		}
	}
	if err := m2.Validate(); err == nil {
		t.Fatal("Validate accepted a stale NonEmptyCols memo")
	}
	m2.InvalidateNonEmptyCols()
	if err := m2.Validate(); err != nil {
		t.Fatalf("Validate after InvalidateNonEmptyCols: %v", err)
	}
}
