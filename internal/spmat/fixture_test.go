package spmat

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTallSkinnyFixture pins the checked-in SpMM feature panel: the fixture
// must parse, carry the tall-skinny shape the spmm experiment expects,
// densify losslessly, and survive the dense wire format round trip.
func TestTallSkinnyFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "tallskinny_256x8.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := ReadMatrixMarket(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 256 || m.Cols != 8 {
		t.Fatalf("fixture is %dx%d, want 256x8", m.Rows, m.Cols)
	}
	if m.NNZ() == 0 || m.NNZ() == int64(m.Rows)*int64(m.Cols) {
		t.Fatalf("fixture nnz %d should be a partial fill of %d", m.NNZ(), int64(m.Rows)*int64(m.Cols))
	}

	d := DenseFromCSC(m)
	if d.Rows != m.Rows || d.Cols != m.Cols {
		t.Fatalf("densified to %dx%d", d.Rows, d.Cols)
	}
	// Every stored entry is a small positive integer (exact in float64 —
	// what keeps distributed products over the panel bit-identical).
	for j := int32(0); j < m.Cols; j++ {
		rows, vals := m.Column(j)
		for i := range rows {
			v := vals[i]
			if v != float64(int(v)) || v < 1 || v > 9 {
				t.Fatalf("entry (%d,%d)=%g is not a small integer", rows[i], j, v)
			}
			if d.At(rows[i], j) != v {
				t.Fatalf("densify dropped (%d,%d)", rows[i], j)
			}
		}
	}

	back, err := DeserializeDense(d.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !DenseEqual(back, d) {
		t.Error("dense wire round trip changed the fixture")
	}
}
