package spmat

import (
	"bytes"
	"testing"
)

// FuzzReadMatrixMarket asserts the reader never panics, that every accepted
// parse satisfies the CSC invariants, and that accepted matrices survive a
// write → read round trip with shape and nonzero count intact. Seeds cover
// every supported field/symmetry combination plus the malformed headers the
// parser must reject gracefully. CI runs a bounded fuzz pass via `make fuzz`.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2\n",
		"%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 2\n2 1 4\n3 3 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n4 5 3\n1 1\n4 5\n2 3\n",
		"%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 7\n",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1\n1 1 2\n", // duplicate summed
		"%%MatrixMarket matrix coordinate real general\n\n%skip\n2 2 1\n1 2 3e-4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 0 0\n", // unsupported field
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",        // unsupported format
		"not a header\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n-3 3 2\n",                   // negative dims
		"%%MatrixMarket matrix coordinate real general\n3 3 -1\n",                   // negative nnz
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n",             // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 9999999999999\n1 1 1\n", // lying nnz
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix violates invariants: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("write of accepted matrix failed: %v", err)
		}
		m2, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\nwrote: %q", err, buf.Bytes())
		}
		if m2.Rows != m.Rows || m2.Cols != m.Cols || m2.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape/nnz: %v -> %v", m, m2)
		}
	})
}
