package spmat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in MatrixMarket coordinate real general format
// with 1-based indices. Entries are emitted column-major.
func WriteMatrixMarket(w io.Writer, m *CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for j := int32(0); j < m.Cols; j++ {
		rows, vals := m.Column(j)
		for p := range rows {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", rows[p]+1, j+1, vals[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. Real, integer, and
// pattern fields are supported; the general and symmetric symmetries are
// supported (symmetric files are expanded). Duplicate coordinates are summed.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("spmat: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("spmat: unsupported MatrixMarket header %q", sc.Text())
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("spmat: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("spmat: unsupported symmetry %q", symmetry)
	}
	// Skip comments, read size line.
	var rows, cols int32
	var nnz int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("spmat: malformed size line %q", line)
		}
		r64, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, err
		}
		c64, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, err
		}
		nnz, err = strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, err
		}
		if r64 < 0 || c64 < 0 || nnz < 0 {
			return nil, fmt.Errorf("spmat: negative size line %q", line)
		}
		rows, cols = int32(r64), int32(c64)
		break
	}
	// The declared nnz is only a capacity hint; cap it so a hostile header
	// cannot force a huge allocation before any entry is parsed.
	capHint := nnz
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	ts := make([]Triple, 0, capHint)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("spmat: malformed entry %q", line)
		}
		i64, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, err
		}
		j64, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, err
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("spmat: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, err
			}
		}
		i, j := int32(i64-1), int32(j64-1)
		ts = append(ts, Triple{Row: i, Col: j, Val: v})
		if symmetry == "symmetric" && i != j {
			ts = append(ts, Triple{Row: j, Col: i, Val: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromTriples(rows, cols, ts, nil)
}
