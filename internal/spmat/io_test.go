package spmat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := randomCSC(t, 30, 20, 0.15, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(m, got, 0) {
		t.Error("round trip changed matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 2.0
2 1 5.0
3 3 7.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 || m.At(1, 0) != 5 || m.At(0, 1) != 5 || m.At(2, 2) != 7 {
		t.Error("symmetric expansion wrong")
	}
	if m.NNZ() != 4 {
		t.Errorf("nnz=%d, want 4", m.NNZ())
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Error("pattern entries should default to 1")
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid input %q", src)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, sorted := range []bool{true, false} {
		m := randomCSC(t, 50, 40, 0.1, 31)
		if !sorted {
			m.SortedCols = false
		}
		buf := m.Serialize()
		if int64(len(buf)) != m.CommBytes() {
			t.Fatalf("CommBytes=%d but serialized %d", m.CommBytes(), len(buf))
		}
		got, err := Deserialize(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.SortedCols != m.SortedCols {
			t.Error("sorted flag lost")
		}
		if !Equal(m, got) {
			t.Error("serialize round trip changed matrix")
		}
	}
}

func TestDeserializeRejectsTruncated(t *testing.T) {
	m := Identity(4)
	buf := m.Serialize()
	if _, err := Deserialize(buf[:len(buf)-3]); err == nil {
		t.Error("truncated buffer accepted")
	}
	if _, err := Deserialize(buf[:5]); err == nil {
		t.Error("tiny buffer accepted")
	}
}

func TestSerializeEmpty(t *testing.T) {
	m := New(3, 3)
	got, err := Deserialize(m.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Rows != 3 || got.Cols != 3 {
		t.Errorf("empty round trip: %v", got)
	}
}

func TestHypersparseSerializeRoundTrip(t *testing.T) {
	// 3 entries scattered over 100k columns: the dense colptr encoding
	// would cost ~800KB; hypersparse must be tiny and lossless.
	ts := []Triple{{Row: 5, Col: 17, Val: 1.5}, {Row: 2, Col: 99999, Val: -2}, {Row: 0, Col: 50000, Val: 3}}
	m, err := FromTriples(10, 100000, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommBytes() > 200 {
		t.Errorf("hypersparse wire size %d bytes, expected tiny", m.CommBytes())
	}
	buf := m.Serialize()
	if int64(len(buf)) != m.CommBytes() {
		t.Fatalf("CommBytes=%d but serialized %d", m.CommBytes(), len(buf))
	}
	got, err := Deserialize(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, got) {
		t.Error("hypersparse round trip changed matrix")
	}
	if got.SortedCols != m.SortedCols {
		t.Error("sorted flag lost")
	}
}

func TestHypersparseThreshold(t *testing.T) {
	// Fully dense column occupancy must use the plain encoding (smaller).
	m := Identity(64)
	plain := serialHeader + 8*int64(m.Cols+1) + 12*m.NNZ()
	if m.CommBytes() != plain {
		t.Errorf("dense-occupancy matrix used hypersparse encoding: %d vs %d", m.CommBytes(), plain)
	}
	// Half-empty: hypersparse wins.
	half := New(64, 1024)
	half.ColPtr = make([]int64, 1025)
	if hyper, _ := half.hypersparseWire(); !hyper {
		t.Error("empty wide matrix should use hypersparse encoding")
	}
}

func TestHypersparseEmptyMatrix(t *testing.T) {
	m := New(10, 100000)
	got, err := Deserialize(m.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Cols != 100000 {
		t.Errorf("empty hypersparse round trip: %v", got)
	}
}

func TestHypersparseRejectsCorruptCounts(t *testing.T) {
	ts := []Triple{{Row: 1, Col: 40, Val: 2}}
	m, _ := FromTriples(4, 1000, ts, nil)
	buf := m.Serialize()
	if buf[16]&2 == 0 {
		t.Fatal("fixture should be hypersparse")
	}
	// Corrupt the per-column count.
	bad := append([]byte(nil), buf...)
	bad[serialHeader+4+4] = 99
	if _, err := Deserialize(bad); err == nil {
		t.Error("corrupt counts accepted")
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int32(rng.Intn(40) + 1)
		cols := int32(rng.Intn(3000) + 1) // often hypersparse
		m := randomCSC(t, rows, cols, 0.02, seed)
		got, err := Deserialize(m.Serialize())
		if err != nil {
			return false
		}
		return Equal(m, got) && got.SortedCols == m.SortedCols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
