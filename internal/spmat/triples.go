package spmat

import (
	"fmt"
	"sort"
)

// Triple is a coordinate-format nonzero.
type Triple struct {
	Row, Col int32
	Val      float64
}

// FromTriples builds a CSC matrix from coordinate entries, accumulating
// duplicates with add (nil means ordinary +). The result has sorted,
// duplicate-free columns.
func FromTriples(rows, cols int32, ts []Triple, add func(a, b float64) float64) (*CSC, error) {
	if add == nil {
		add = func(a, b float64) float64 { return a + b }
	}
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("spmat: triple (%d,%d) out of range for %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	// Counting pass.
	count := make([]int64, cols+1)
	for _, t := range ts {
		count[t.Col+1]++
	}
	for j := int32(0); j < cols; j++ {
		count[j+1] += count[j]
	}
	rowIdx := make([]int32, len(ts))
	val := make([]float64, len(ts))
	next := append([]int64(nil), count...)
	for _, t := range ts {
		p := next[t.Col]
		rowIdx[p] = t.Row
		val[p] = t.Val
		next[t.Col]++
	}
	m := &CSC{Rows: rows, Cols: cols, ColPtr: count, RowIdx: rowIdx, Val: val, SortedCols: false}
	m.Compact(add)
	return m, nil
}

// Triples returns the stored entries in column-major order.
func (m *CSC) Triples() []Triple {
	out := make([]Triple, 0, m.NNZ())
	for j := int32(0); j < m.Cols; j++ {
		rows, vals := m.Column(j)
		for p := range rows {
			out = append(out, Triple{Row: rows[p], Col: j, Val: vals[p]})
		}
	}
	return out
}

// SortTriples orders ts column-major (by column, then row). It is used by
// tests and the Matrix Market writer.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].Col != ts[b].Col {
			return ts[a].Col < ts[b].Col
		}
		return ts[a].Row < ts[b].Row
	})
}

// Identity returns the n×n identity matrix.
func Identity(n int32) *CSC {
	m := &CSC{
		Rows:       n,
		Cols:       n,
		ColPtr:     make([]int64, n+1),
		RowIdx:     make([]int32, n),
		Val:        make([]float64, n),
		SortedCols: true,
	}
	for j := int32(0); j < n; j++ {
		m.ColPtr[j+1] = int64(j + 1)
		m.RowIdx[j] = j
		m.Val[j] = 1
	}
	return m
}

// Dense converts a dense row-major matrix (rows×cols) into CSC, storing only
// nonzero entries. Intended for small test fixtures.
func Dense(rows, cols int32, data []float64) *CSC {
	if int(rows)*int(cols) != len(data) {
		panic(fmt.Sprintf("spmat: Dense got %d values for %dx%d", len(data), rows, cols))
	}
	var ts []Triple
	for i := int32(0); i < rows; i++ {
		for j := int32(0); j < cols; j++ {
			if v := data[int(i)*int(cols)+int(j)]; v != 0 {
				ts = append(ts, Triple{Row: i, Col: j, Val: v})
			}
		}
	}
	m, err := FromTriples(rows, cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return m
}

// ToDense expands the matrix into a dense row-major slice. Intended for small
// test fixtures; duplicates are summed.
func (m *CSC) ToDense() []float64 {
	out := make([]float64, int(m.Rows)*int(m.Cols))
	for j := int32(0); j < m.Cols; j++ {
		rows, vals := m.Column(j)
		for p := range rows {
			out[int(rows[p])*int(m.Cols)+int(j)] += vals[p]
		}
	}
	return out
}
