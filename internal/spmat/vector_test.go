package spmat

import (
	"math"
	"testing"
)

func TestColRowSums(t *testing.T) {
	m := Dense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	cs := m.ColSums()
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 {
		t.Errorf("ColSums=%v", cs)
	}
	rs := m.RowSums()
	if rs[0] != 6 || rs[1] != 15 {
		t.Errorf("RowSums=%v", rs)
	}
}

func TestColRowCounts(t *testing.T) {
	m := Dense(3, 3, []float64{1, 0, 2, 0, 0, 3, 4, 0, 0})
	cc := m.ColCounts()
	if cc[0] != 2 || cc[1] != 0 || cc[2] != 2 {
		t.Errorf("ColCounts=%v", cc)
	}
	rc := m.RowCounts()
	if rc[0] != 2 || rc[1] != 1 || rc[2] != 1 {
		t.Errorf("RowCounts=%v", rc)
	}
}

func TestDiag(t *testing.T) {
	m := Dense(3, 3, []float64{7, 1, 0, 0, 8, 0, 0, 0, 9})
	d := m.Diag()
	if d[0] != 7 || d[1] != 8 || d[2] != 9 {
		t.Errorf("Diag=%v", d)
	}
	// Rectangular: diagonal truncates at the short side.
	r := Dense(2, 3, []float64{5, 0, 0, 0, 6, 0})
	dr := r.Diag()
	if len(dr) != 2 || dr[0] != 5 || dr[1] != 6 {
		t.Errorf("rect Diag=%v", dr)
	}
}

func TestScaleColumnsRows(t *testing.T) {
	m := Dense(2, 2, []float64{1, 2, 3, 4})
	m.ScaleColumns([]float64{10, 100})
	if m.At(0, 0) != 10 || m.At(0, 1) != 200 || m.At(1, 0) != 30 || m.At(1, 1) != 400 {
		t.Error("ScaleColumns wrong")
	}
	m.ScaleRows([]float64{1, 0.1})
	if math.Abs(m.At(1, 0)-3) > 1e-12 || math.Abs(m.At(1, 1)-40) > 1e-12 {
		t.Error("ScaleRows wrong")
	}
}

func TestMatVec(t *testing.T) {
	m := Dense(2, 3, []float64{1, 2, 0, 0, 1, 3})
	y := m.MatVec([]float64{1, 2, 3})
	if y[0] != 5 || y[1] != 11 {
		t.Errorf("MatVec=%v", y)
	}
}

func TestMatVecAgainstDense(t *testing.T) {
	m := randomCSC(t, 30, 25, 0.2, 41)
	x := make([]float64, 25)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	got := m.MatVec(x)
	d := m.ToDense()
	for i := int32(0); i < 30; i++ {
		var want float64
		for j := int32(0); j < 25; j++ {
			want += d[int(i)*25+int(j)] * x[j]
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("row %d: %v want %v", i, got[i], want)
		}
	}
}

func TestPermuteRowsAndCols(t *testing.T) {
	m := Dense(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	perm := []int32{2, 0, 1} // row/col r → perm[r]
	pr := PermuteRows(m, perm)
	for i := int32(0); i < 3; i++ {
		for j := int32(0); j < 3; j++ {
			if pr.At(perm[i], j) != m.At(i, j) {
				t.Fatalf("PermuteRows wrong at (%d,%d)", i, j)
			}
		}
	}
	if !pr.SortedCols {
		t.Error("PermuteRows should restore sortedness")
	}
	pc := PermuteCols(m, perm)
	for i := int32(0); i < 3; i++ {
		for j := int32(0); j < 3; j++ {
			if pc.At(i, perm[j]) != m.At(i, j) {
				t.Fatalf("PermuteCols wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	m := randomCSC(t, 20, 20, 0.25, 42)
	perm := make([]int32, 20)
	inv := make([]int32, 20)
	for i := range perm {
		perm[i] = int32((i*7 + 3) % 20)
		inv[perm[i]] = int32(i)
	}
	if !Equal(m, PermuteRows(PermuteRows(m, perm), inv)) {
		t.Error("row permute round trip failed")
	}
	if !Equal(m, PermuteCols(PermuteCols(m, perm), inv)) {
		t.Error("col permute round trip failed")
	}
}

func TestKronSmall(t *testing.T) {
	a := Dense(2, 2, []float64{1, 2, 0, 3})
	b := Dense(2, 2, []float64{0, 1, 1, 0})
	k := Kron(a, b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("shape %v", k)
	}
	// (a⊗b)(i*2+ib, j*2+jb) = a(i,j)*b(ib,jb).
	for i := int32(0); i < 2; i++ {
		for j := int32(0); j < 2; j++ {
			for ib := int32(0); ib < 2; ib++ {
				for jb := int32(0); jb < 2; jb++ {
					want := a.At(i, j) * b.At(ib, jb)
					if got := k.At(i*2+ib, j*2+jb); got != want {
						t.Fatalf("Kron(%d,%d)=%v want %v", i*2+ib, j*2+jb, got, want)
					}
				}
			}
		}
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKronNNZMultiplies(t *testing.T) {
	a := randomCSC(t, 8, 8, 0.3, 43)
	b := randomCSC(t, 5, 5, 0.4, 44)
	k := Kron(a, b)
	if k.NNZ() != a.NNZ()*b.NNZ() {
		t.Errorf("nnz(Kron)=%d, want %d", k.NNZ(), a.NNZ()*b.NNZ())
	}
	if int64(k.Rows) != int64(a.Rows)*int64(b.Rows) {
		t.Error("Kron rows wrong")
	}
}

func TestKronIdentity(t *testing.T) {
	m := randomCSC(t, 6, 6, 0.3, 45)
	k := Kron(Identity(1), m)
	if !Equal(k, m) {
		t.Error("I1 ⊗ M ≠ M")
	}
}
