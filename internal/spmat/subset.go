package spmat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RowSupport returns the sorted list of rows of m that hold at least one
// entry. In an A·B multiply the inner loop reads column c of A only when row
// c of B is occupied, so the row support of a B block is exactly the column
// subset of the matching A block the receiver's multiply can touch — the
// sparsity the column-subset communication path ships instead of whole
// blocks.
func RowSupport(m Matrix) []int32 {
	rows, _ := m.Dims()
	seen := make([]bool, rows)
	var n int
	m.EnumCols(func(_ int32, rs []int32, _ []float64) {
		for _, r := range rs {
			if !seen[r] {
				seen[r] = true
				n++
			}
		}
	})
	out := make([]int32, 0, n)
	for r, s := range seen {
		if s {
			out = append(out, int32(r))
		}
	}
	return out
}

// ColSubsetView is a lazy wire view of a column subset of a matrix: it
// serializes (and meters) as if the unlisted columns of M were empty, without
// copying anything until Serialize is called. The logical shape is preserved
// — the encoded matrix still has all of M's columns, so a decode drops into
// the same kernels as a full block. Cols must be strictly ascending and in
// range. The occupancy statistics are memoized on first use; a view is
// single-goroutine state (each receiver builds its own).
type ColSubsetView struct {
	M    Matrix
	Cols []int32

	statted bool
	ne, nnz int64
}

// stat computes (once) the subset's non-empty column count and entry count.
func (v *ColSubsetView) stat() (ne, nnz int64) {
	if !v.statted {
		prev := int32(-1)
		for _, j := range v.Cols {
			if j <= prev {
				panic(fmt.Sprintf("spmat: ColSubsetView columns not strictly ascending at %d", j))
			}
			prev = j
			if c := v.M.ColNNZ(j); c > 0 {
				v.ne++
				v.nnz += c
			}
		}
		v.statted = true
	}
	return v.ne, v.nnz
}

// NNZ returns the number of entries the subset carries.
func (v *ColSubsetView) NNZ() int64 {
	_, nnz := v.stat()
	return nnz
}

// CommBytes returns the wire size of the subset — the same formula a
// materialized matrix with this occupancy would report, so metering a subset
// send is byte-identical to shipping the serialized subset.
func (v *ColSubsetView) CommBytes() int64 {
	_, cols := v.M.Dims()
	ne, nnz := v.stat()
	return wireBytes(Hypersparse(ne, cols), cols, ne, nnz)
}

// Serialize encodes the subset in the shared wire format.
func (v *ColSubsetView) Serialize() []byte { return v.SerializeInto(nil) }

// SerializeInto encodes the subset into dst when dst has the capacity,
// allocating a fresh buffer only when it does not — the pooled-buffer entry
// point (see mpi's per-communicator pool). It returns the encoded slice,
// which always has length CommBytes.
func (v *ColSubsetView) SerializeInto(dst []byte) []byte {
	rows, cols := v.M.Dims()
	ne, nnz := v.stat()
	hyper := Hypersparse(ne, cols)
	n := wireBytes(hyper, cols, ne, nnz)
	if int64(cap(dst)) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	dst[16] = 0 // pooled buffers are not zeroed; putHeader ORs flag bits
	putHeader(dst, rows, cols, nnz, v.M.Sorted(), hyper)
	off := int64(serialHeader)
	if hyper {
		binary.LittleEndian.PutUint32(dst[off:], uint32(ne))
		off += 4
		for _, j := range v.Cols {
			cnt := v.M.ColNNZ(j)
			if cnt == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(dst[off:], uint32(j))
			binary.LittleEndian.PutUint32(dst[off+4:], uint32(cnt))
			off += 8
		}
	} else {
		var acc int64
		p := 0
		for j := int32(0); j <= cols; j++ {
			binary.LittleEndian.PutUint64(dst[off:], uint64(acc))
			off += 8
			if p < len(v.Cols) && v.Cols[p] == j {
				acc += v.M.ColNNZ(j)
				p++
			}
		}
	}
	// Wire layout is all row indices, then all values: two passes.
	for _, j := range v.Cols {
		rs, _ := v.M.Column(j)
		for _, r := range rs {
			binary.LittleEndian.PutUint32(dst[off:], uint32(r))
			off += 4
		}
	}
	for _, j := range v.Cols {
		_, vs := v.M.Column(j)
		for _, x := range vs {
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(x))
			off += 8
		}
	}
	return dst
}

// SubsetWireBytes returns the wire size of the listed columns of m without
// building a view: the same formula ColSubsetView.CommBytes reports. It
// allocates nothing, so the SUMMA inner loop can size every stage's subset
// while staying on the zero-allocation steady-state path.
func SubsetWireBytes(m Matrix, cols []int32) int64 {
	_, full := m.Dims()
	var ne, nnz int64
	for _, j := range cols {
		if c := m.ColNNZ(j); c > 0 {
			ne++
			nnz += c
		}
	}
	return wireBytes(Hypersparse(ne, full), full, ne, nnz)
}

// MatColSubsetSerialize encodes the listed columns of m (strictly ascending)
// in the shared wire format — the one-shot form of ColSubsetView.
func MatColSubsetSerialize(m Matrix, cols []int32) []byte {
	return (&ColSubsetView{M: m, Cols: cols}).Serialize()
}
