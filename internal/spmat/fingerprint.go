package spmat

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint identifies a matrix's logical content: its shape, nonzero
// count, storage format, and a content hash over the canonical wire bytes.
// Two matrices with equal fingerprints multiply identically under every
// configuration, so a fingerprint pair is a sound cache key for planner
// decisions (the serving layer's plan cache) and for resident-matrix
// identity (loading the same Matrix Market source twice is a no-op).
//
// The hash is computed over Serialize()'s output, which is format-independent
// by construction (CSC and DCSC forms of one logical matrix serialize to
// identical bytes), so the content hash never depends on the in-memory
// representation. Format is carried alongside the hash — not mixed into it —
// because the format knob changes kernels and footprints but not values.
type Fingerprint struct {
	Rows int32  `json:"rows"`
	Cols int32  `json:"cols"`
	NNZ  int64  `json:"nnz"`
	Fmt  string `json:"format"`
	Hash string `json:"hash"`
}

// FingerprintOf computes the fingerprint of a matrix. The content hash walks
// the canonical wire encoding, so it is O(nnz) work and one transient buffer;
// callers that hold a matrix resident should compute it once and keep it.
func FingerprintOf(m Matrix) Fingerprint {
	sum := sha256.Sum256(m.Serialize())
	r, c := m.Dims()
	return Fingerprint{
		Rows: r,
		Cols: c,
		NNZ:  m.NNZ(),
		Fmt:  m.Format().String(),
		Hash: hex.EncodeToString(sum[:]),
	}
}

// Key renders the fingerprint as a stable, human-readable string suitable
// for composing cache keys.
func (f Fingerprint) Key() string {
	return fmt.Sprintf("%dx%d:nnz=%d:fmt=%s:%s", f.Rows, f.Cols, f.NNZ, f.Fmt, f.Hash)
}

// ContentEqual reports whether two fingerprints describe the same logical
// matrix values, ignoring the in-memory format.
func (f Fingerprint) ContentEqual(o Fingerprint) bool {
	return f.Rows == o.Rows && f.Cols == o.Cols && f.NNZ == o.NNZ && f.Hash == o.Hash
}
