package spmat

import "testing"

// A fingerprint must be format-independent in content (hash, dims, nnz) and
// must change when the values change.
func TestFingerprintFormatIndependentContent(t *testing.T) {
	add := func(a, b float64) float64 { return a + b }
	m, err := FromTriples(6, 8, []Triple{
		{0, 0, 1}, {3, 0, 2}, {5, 2, 3}, {1, 7, 4}, {2, 7, 5},
	}, add)
	if err != nil {
		t.Fatal(err)
	}
	fc := FingerprintOf(m)
	fd := FingerprintOf(m.ToDCSC())
	if !fc.ContentEqual(fd) {
		t.Fatalf("CSC and DCSC fingerprints differ in content: %s vs %s", fc.Key(), fd.Key())
	}
	if fc.Fmt == fd.Fmt {
		t.Fatalf("formats should differ, both %q", fc.Fmt)
	}
	if fc.Rows != 6 || fc.Cols != 8 || fc.NNZ != 5 {
		t.Fatalf("fingerprint shape wrong: %+v", fc)
	}
	if fc.Hash == "" || len(fc.Hash) != 64 {
		t.Fatalf("hash should be 64 hex chars, got %q", fc.Hash)
	}

	m2, err := FromTriples(6, 8, []Triple{
		{0, 0, 1}, {3, 0, 2}, {5, 2, 3}, {1, 7, 4}, {2, 7, 9},
	}, add)
	if err != nil {
		t.Fatal(err)
	}
	f2 := FingerprintOf(m2)
	if f2.ContentEqual(fc) {
		t.Fatalf("different values must change the fingerprint")
	}
	if fc.Key() == fd.Key() {
		t.Fatalf("Key must include the format")
	}
}
