package spmat

import (
	"math"
	"math/rand"
	"testing"
)

// randomDense returns a rows×cols dense matrix with small-integer values
// (exactly representable, so any summation order over them is bit-identical —
// the same property the sparse differential tests rely on).
func randomDense(rows, cols int32, seed int64) *DenseMat {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	for i := range d.Val {
		d.Val[i] = float64(rng.Intn(9) + 1)
	}
	return d
}

// TestDenseRoundTrip: serialize → deserialize must reproduce the matrix
// bit-for-bit across random shapes, including degenerate empty ones, and
// CommBytes must equal the encoded length.
func TestDenseMatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 60; it++ {
		rows := int32(rng.Intn(64))
		cols := int32(rng.Intn(24))
		d := randomDense(rows, cols, int64(it))
		buf := d.Serialize()
		if int64(len(buf)) != d.CommBytes() {
			t.Fatalf("it %d (%v): CommBytes %d vs encoded %d", it, d, d.CommBytes(), len(buf))
		}
		if d.CommBytes() != DenseWireBytesFor(rows, cols) {
			t.Fatalf("it %d: CommBytes disagrees with DenseWireBytesFor", it)
		}
		got, err := DeserializeDense(buf)
		if err != nil {
			t.Fatalf("it %d (%v): %v", it, d, err)
		}
		if !DenseEqual(d, got) {
			t.Fatalf("it %d (%v): round trip changed the matrix", it, d)
		}
	}
}

// TestDenseRoundTripSpecialValues: NaN payloads, signed zeros, and infinities
// must survive the wire bit-exactly.
func TestDenseRoundTripSpecialValues(t *testing.T) {
	d := NewDense(2, 3)
	d.Val = []float64{
		math.NaN(), math.Copysign(0, -1), math.Inf(1),
		math.Inf(-1), 0, math.Float64frombits(0x7ff8000000000001),
	}
	got, err := DeserializeDense(d.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Val {
		if math.Float64bits(d.Val[i]) != math.Float64bits(got.Val[i]) {
			t.Fatalf("value %d: %x round-tripped to %x", i,
				math.Float64bits(d.Val[i]), math.Float64bits(got.Val[i]))
		}
	}
	if !DenseEqual(d, got) {
		t.Fatal("DenseEqual must compare bits, not float equality")
	}
}

// TestDenseDeserializeRejectsHostile: the decoder must reject truncation,
// negative shapes, size lies, nonzero flags, and trailing garbage.
func TestDenseDeserializeRejectsHostile(t *testing.T) {
	d := randomDense(4, 3, 1)
	buf := d.Serialize()
	if _, err := DeserializeDense(buf[:5]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := DeserializeDense(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DeserializeDense(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	neg := append([]byte(nil), buf...)
	neg[3] = 0x80 // rows < 0
	if _, err := DeserializeDense(neg); err == nil {
		t.Error("negative rows accepted")
	}
	flg := append([]byte(nil), buf...)
	flg[8] = 0x04
	if _, err := DeserializeDense(flg); err == nil {
		t.Error("unknown flags accepted")
	}
	lie := append([]byte(nil), buf...)
	lie[0] = 0xff // rows claims 255+, payload holds 12 values
	if _, err := DeserializeDense(lie); err == nil {
		t.Error("shape/size disagreement accepted")
	}
}

// TestDenseSlicing: RowRange/ColRange/HCat/CopyInto/AddInto must agree with
// direct index arithmetic.
func TestDenseSlicing(t *testing.T) {
	d := randomDense(10, 6, 3)
	rr := DenseRowRange(d, 2, 7)
	for i := int32(0); i < 5; i++ {
		for j := int32(0); j < 6; j++ {
			if rr.At(i, j) != d.At(i+2, j) {
				t.Fatalf("RowRange (%d,%d)", i, j)
			}
		}
	}
	cr := DenseColRange(d, 1, 4)
	for i := int32(0); i < 10; i++ {
		for j := int32(0); j < 3; j++ {
			if cr.At(i, j) != d.At(i, j+1) {
				t.Fatalf("ColRange (%d,%d)", i, j)
			}
		}
	}
	cat := DenseHCat([]*DenseMat{DenseColRange(d, 0, 2), DenseColRange(d, 2, 6)})
	if !DenseEqual(cat, d) {
		t.Fatal("HCat of a column split must reproduce the matrix")
	}
	asm := NewDense(10, 6)
	DenseRowRange(d, 0, 4).CopyInto(asm, 0, 0)
	DenseRowRange(d, 4, 10).CopyInto(asm, 4, 0)
	if !DenseEqual(asm, d) {
		t.Fatal("CopyInto of a row split must reproduce the matrix")
	}
	acc := NewDense(10, 6)
	d.AddInto(acc, 0, 0)
	d.AddInto(acc, 0, 0)
	for i := range acc.Val {
		if acc.Val[i] != 2*d.Val[i] {
			t.Fatal("AddInto must accumulate")
		}
	}
}

// TestDenseCSCConversion: DenseFromCSC ∘ ToCSC must be the identity on dense
// matrices without explicit zeros, and ToCSC must drop zeros.
func TestDenseCSCConversion(t *testing.T) {
	d := randomDense(12, 5, 9)
	d.Set(3, 2, 0)
	d.Set(7, 0, 0)
	m := d.ToCSC()
	if err := m.Validate(); err != nil {
		t.Fatalf("ToCSC produced invalid CSC: %v", err)
	}
	if m.NNZ() != int64(len(d.Val)-2) {
		t.Fatalf("ToCSC kept %d entries, want %d", m.NNZ(), len(d.Val)-2)
	}
	back := DenseFromCSC(m)
	if !DenseEqual(d, back) {
		t.Fatal("DenseFromCSC(ToCSC(d)) differs from d")
	}
}
