package spmat

import (
	"fmt"
	"sort"
)

// DCSC is a sparse matrix in doubly-compressed sparse column format
// (Buluç & Gilbert, "Highly Parallel Sparse Matrix-Matrix Multiplication"):
// only the non-empty columns carry metadata, so a hypersparse block —
// far more columns than nonzeros, the regime the paper's Rice-kmers AAᵀ
// lives in at high layer counts — costs O(nnz) instead of O(cols).
//
//	JC[p]            global index of the p-th non-empty column (ascending)
//	CP[p] : CP[p+1]  that column's range in IR/Num
//	IR, Num          row indices and values, column-major like CSC
//
// Column p of the compressed arrays is column JC[p] of the logical matrix;
// columns not listed in JC are empty. SortedCols means what it means for
// CSC: every stored column has strictly ascending rows.
type DCSC struct {
	Rows, Cols int32
	JC         []int32
	CP         []int64
	IR         []int32
	Num        []float64
	SortedCols bool
}

// NewDCSC returns an empty rows×cols matrix in doubly-compressed form.
func NewDCSC(rows, cols int32) *DCSC {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("spmat: negative dimension %dx%d", rows, cols))
	}
	return &DCSC{Rows: rows, Cols: cols, CP: []int64{0}, SortedCols: true}
}

// Dims returns the logical shape.
func (d *DCSC) Dims() (int32, int32) { return d.Rows, d.Cols }

// NNZ returns the number of stored entries.
func (d *DCSC) NNZ() int64 {
	if len(d.CP) == 0 {
		return 0
	}
	return d.CP[len(d.JC)]
}

// NonEmptyCols returns the number of occupied columns — the quantity DCSC
// keeps explicit, O(1) by construction.
func (d *DCSC) NonEmptyCols() int64 { return int64(len(d.JC)) }

// find returns the position of column j in JC, or -1 when j is empty.
func (d *DCSC) find(j int32) int {
	p := sort.Search(len(d.JC), func(i int) bool { return d.JC[i] >= j })
	if p < len(d.JC) && d.JC[p] == j {
		return p
	}
	return -1
}

// ColNNZ returns the entry count of column j (0 for absent columns);
// O(log nzc).
func (d *DCSC) ColNNZ(j int32) int64 {
	p := d.find(j)
	if p < 0 {
		return 0
	}
	return d.CP[p+1] - d.CP[p]
}

// Column returns views of column j's rows and values (empty slices for
// absent columns); O(log nzc).
func (d *DCSC) Column(j int32) ([]int32, []float64) {
	p := d.find(j)
	if p < 0 {
		return nil, nil
	}
	lo, hi := d.CP[p], d.CP[p+1]
	return d.IR[lo:hi], d.Num[lo:hi]
}

// ColumnAt returns the p-th stored column: its global index and views of its
// rows and values. Positional access is O(1) — the iteration primitive the
// hypersparse kernels build on.
func (d *DCSC) ColumnAt(p int) (j int32, rows []int32, vals []float64) {
	lo, hi := d.CP[p], d.CP[p+1]
	return d.JC[p], d.IR[lo:hi], d.Num[lo:hi]
}

// DCSCCursor is a positional column cursor: a stateful alternative to the
// per-call binary search of Column/ColNNZ for access patterns that are
// mostly ascending — exactly the A-side lookups of the generic SpGEMM inner
// loop, which walk a (sorted) B column's row indices in order. Consecutive
// ascending lookups cost amortized O(1) per stored column passed (a gallop
// from the previous position); a backward jump falls back to binary search
// over the prefix, so no pattern is ever worse than the O(log nzc) the
// cursor replaces. A cursor is single-goroutine state; concurrent workers
// each take their own with Cursor().
type DCSCCursor struct {
	d   *DCSC
	pos int
}

// Cursor returns a fresh cursor positioned before the first stored column.
func (d *DCSC) Cursor() DCSCCursor { return DCSCCursor{d: d} }

// find locates column j like DCSC.find but starting from the cursor
// position: a hit at pos is O(1), a forward miss gallops, a backward miss
// binary-searches the prefix. The cursor always lands on the first stored
// column ≥ j, so an ascending scan never revisits ground already passed.
func (c *DCSCCursor) find(j int32) int {
	jc := c.d.JC
	n := len(jc)
	lo, hi := 0, n
	if c.pos < n {
		switch {
		case jc[c.pos] == j:
			return c.pos
		case jc[c.pos] < j:
			// Gallop: double the step until it overshoots, then search the
			// last window. The window start stays unverified (Search copes).
			lo = c.pos + 1
			step := 1
			for lo+step < n && jc[lo+step] < j {
				lo += step
				step <<= 1
			}
			if w := lo + step + 1; w < hi {
				hi = w
			}
		default: // jc[c.pos] > j: the target is in the prefix.
			hi = c.pos
		}
	}
	p := lo + sort.Search(hi-lo, func(i int) bool { return jc[lo+i] >= j })
	c.pos = p
	if p < n && jc[p] == j {
		return p
	}
	return -1
}

// ColNNZ returns the entry count of column j (0 for absent columns),
// advancing the cursor.
func (c *DCSCCursor) ColNNZ(j int32) int64 {
	p := c.find(j)
	if p < 0 {
		return 0
	}
	return c.d.CP[p+1] - c.d.CP[p]
}

// Column returns views of column j's rows and values (empty for absent
// columns), advancing the cursor.
func (c *DCSCCursor) Column(j int32) ([]int32, []float64) {
	p := c.find(j)
	if p < 0 {
		return nil, nil
	}
	lo, hi := c.d.CP[p], c.d.CP[p+1]
	return c.d.IR[lo:hi], c.d.Num[lo:hi]
}

// EnumCols calls fn for every non-empty column in ascending order.
func (d *DCSC) EnumCols(fn func(j int32, rows []int32, vals []float64)) {
	for p := range d.JC {
		lo, hi := d.CP[p], d.CP[p+1]
		fn(d.JC[p], d.IR[lo:hi], d.Num[lo:hi])
	}
}

// Sorted reports whether every stored column has ascending rows.
func (d *DCSC) Sorted() bool { return d.SortedCols }

// SortColumns sorts rows (and values) inside every stored column, in place.
func (d *DCSC) SortColumns() {
	if d.SortedCols {
		return
	}
	for p := range d.JC {
		lo, hi := d.CP[p], d.CP[p+1]
		sortColumn(d.IR[lo:hi], d.Num[lo:hi])
	}
	d.SortedCols = true
}

// Format identifies the concrete representation.
func (d *DCSC) Format() Format { return FormatDCSC }

// ToDCSC returns the matrix itself.
func (d *DCSC) ToDCSC() *DCSC { return d }

// ToCSC inflates to dense column pointers; O(cols + nnz). This is the step
// the hypersparse paths exist to avoid — only edges of the system (final
// assembly, user-facing pieces) should pay it.
func (d *DCSC) ToCSC() *CSC {
	m := &CSC{
		Rows:       d.Rows,
		Cols:       d.Cols,
		ColPtr:     make([]int64, d.Cols+1),
		RowIdx:     append([]int32(nil), d.IR...),
		Val:        append([]float64(nil), d.Num...),
		SortedCols: d.SortedCols,
		neCache:    int64(len(d.JC)) + 1,
	}
	p := 0
	for j := int32(0); j < d.Cols; j++ {
		if p < len(d.JC) && d.JC[p] == j {
			p++
		}
		m.ColPtr[j+1] = d.CP[p]
	}
	return m
}

// CloneMat returns a deep copy in DCSC form.
func (d *DCSC) CloneMat() Matrix { return d.Clone() }

// Clone returns a deep copy.
func (d *DCSC) Clone() *DCSC {
	return &DCSC{
		Rows: d.Rows, Cols: d.Cols,
		JC:         append([]int32(nil), d.JC...),
		CP:         append([]int64(nil), d.CP...),
		IR:         append([]int32(nil), d.IR...),
		Num:        append([]float64(nil), d.Num...),
		SortedCols: d.SortedCols,
	}
}

// Validate checks structural invariants: strictly ascending JC, monotone CP,
// no empty stored columns, in-range indices, slice agreement, and — when
// SortedCols — ascending duplicate-free rows per stored column.
func (d *DCSC) Validate() error {
	if len(d.CP) != len(d.JC)+1 {
		return fmt.Errorf("spmat: DCSC CP length %d does not match %d stored columns", len(d.CP), len(d.JC))
	}
	if d.CP[0] != 0 {
		return fmt.Errorf("spmat: DCSC CP[0] = %d, want 0", d.CP[0])
	}
	nnz := d.CP[len(d.JC)]
	if int64(len(d.IR)) != nnz || int64(len(d.Num)) != nnz {
		return fmt.Errorf("spmat: DCSC nnz %d disagrees with slices (%d rows, %d vals)", nnz, len(d.IR), len(d.Num))
	}
	for p := range d.JC {
		j := d.JC[p]
		if j < 0 || j >= d.Cols {
			return fmt.Errorf("spmat: DCSC column index %d out of range [0,%d)", j, d.Cols)
		}
		if p > 0 && d.JC[p-1] >= j {
			return fmt.Errorf("spmat: DCSC JC not strictly ascending at position %d", p)
		}
		if d.CP[p] >= d.CP[p+1] {
			return fmt.Errorf("spmat: DCSC stored column %d is empty or CP non-monotone", j)
		}
		prev := int32(-1)
		for q := d.CP[p]; q < d.CP[p+1]; q++ {
			r := d.IR[q]
			if r < 0 || r >= d.Rows {
				return fmt.Errorf("spmat: DCSC row index %d out of range [0,%d) in column %d", r, d.Rows, j)
			}
			if d.SortedCols {
				if r <= prev {
					return fmt.Errorf("spmat: DCSC column %d not strictly sorted (row %d after %d)", j, r, prev)
				}
				prev = r
			}
		}
	}
	return nil
}

// MemBytes returns the modeled memory footprint under the paper's default
// r; see BlockMemBytes for the model.
func (d *DCSC) MemBytes() int64 {
	return BlockMemBytes(d, BytesPerNonzero)
}

// BlockMemBytes models one block's memory footprint under a configurable
// bytes-per-nonzero constant r — the single source of truth shared by
// Matrix.MemBytes, the symbolic step's batch decision, and the experiment
// layer. CSC keeps the paper's flat accounting, r bytes per nonzero
// (Sec. IV-A's constant folds dense per-column metadata into the
// per-nonzero cost). DCSC charges the entry payload at r/2 per nonzero (a
// 4-byte row index plus an 8-byte value at the default r = 24) plus 12
// bytes per non-empty column (a 4-byte column index plus an 8-byte
// pointer) and the CP sentinel. For hypersparse blocks (≥2 nnz per
// occupied column) the explicit accounting is strictly smaller, which is
// exactly what lets the memory-constrained symbolic step (Alg 3 line 12)
// choose fewer batches.
func BlockMemBytes(m Matrix, r int64) int64 {
	return MemBytesModel(m.Format(), m.NNZ(), m.NonEmptyCols(), r)
}

// MemBytesModel is the numeric core of BlockMemBytes: the modeled footprint
// of a block with nnz entries in ne non-empty columns stored in format f,
// under r bytes per nonzero. Exposed separately so cost predictors (the
// planner) can evaluate footprints from block statistics without
// materializing a block. FormatAuto applies the Hypersparse-style per-block
// choice a caller cannot make without the column count, so it is rejected —
// resolve the format first.
func MemBytesModel(f Format, nnz, ne, r int64) int64 {
	if f == FormatDCSC {
		return (r/2)*nnz + 12*ne + 8
	}
	return r * nnz
}

// String returns a compact shape summary.
func (d *DCSC) String() string {
	s := "unsorted"
	if d.SortedCols {
		s = "sorted"
	}
	return fmt.Sprintf("%dx%d, nnz=%d, nzc=%d (dcsc, %s)", d.Rows, d.Cols, d.NNZ(), d.NonEmptyCols(), s)
}

// ToDCSC compresses the matrix; O(cols + nnz), done once per block at
// distribution (or decode) time.
func (m *CSC) ToDCSC() *DCSC {
	ne := m.NonEmptyCols()
	d := &DCSC{
		Rows: m.Rows, Cols: m.Cols,
		JC:         make([]int32, 0, ne),
		CP:         make([]int64, 1, ne+1),
		IR:         append([]int32(nil), m.RowIdx...),
		Num:        append([]float64(nil), m.Val...),
		SortedCols: m.SortedCols,
	}
	for j := int32(0); j < m.Cols; j++ {
		if m.ColPtr[j+1] > m.ColPtr[j] {
			d.JC = append(d.JC, j)
			d.CP = append(d.CP, m.ColPtr[j+1])
		}
	}
	return d
}

// MatColSelect gathers the listed columns (ascending order required for
// DCSC inputs) into a new matrix of the same concrete format — the
// format-preserving ColSelect used by batch extraction and the fiber split.
// For DCSC the cost is O(nzc + len(cols) + nnz selected): one merged walk
// over JC and the selection, never a per-column binary search.
func MatColSelect(m Matrix, cols []int32) Matrix {
	if c, ok := m.(*CSC); ok {
		return ColSelect(c, cols)
	}
	d := m.ToDCSC()
	out := &DCSC{
		Rows: d.Rows, Cols: int32(len(cols)),
		CP:         make([]int64, 1, len(cols)+1),
		SortedCols: d.SortedCols,
	}
	p := 0
	for k, j := range cols {
		if k > 0 && cols[k-1] >= j {
			// Fall back for non-ascending selections (no current caller).
			return matColSelectUnordered(d, cols)
		}
		for p < len(d.JC) && d.JC[p] < j {
			p++
		}
		if p == len(d.JC) || d.JC[p] != j {
			continue
		}
		lo, hi := d.CP[p], d.CP[p+1]
		out.JC = append(out.JC, int32(k))
		out.IR = append(out.IR, d.IR[lo:hi]...)
		out.Num = append(out.Num, d.Num[lo:hi]...)
		out.CP = append(out.CP, int64(len(out.IR)))
	}
	return out
}

// matColSelectUnordered handles arbitrary selection order with per-column
// lookups.
func matColSelectUnordered(d *DCSC, cols []int32) Matrix {
	out := &DCSC{
		Rows: d.Rows, Cols: int32(len(cols)),
		CP:         make([]int64, 1, len(cols)+1),
		SortedCols: d.SortedCols,
	}
	for k, j := range cols {
		rows, vals := d.Column(j)
		if len(rows) == 0 {
			continue
		}
		out.JC = append(out.JC, int32(k))
		out.IR = append(out.IR, rows...)
		out.Num = append(out.Num, vals...)
		out.CP = append(out.CP, int64(len(out.IR)))
	}
	return out
}
