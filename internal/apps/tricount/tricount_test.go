package tricount

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// complete returns the adjacency matrix of K_n (no self loops).
func complete(n int32) *spmat.CSC {
	var ts []spmat.Triple
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			if i != j {
				ts = append(ts, spmat.Triple{Row: i, Col: j, Val: 1})
			}
		}
	}
	m, _ := spmat.FromTriples(n, n, ts, nil)
	return m
}

// cycle returns the adjacency matrix of the n-cycle.
func cycle(n int32) *spmat.CSC {
	var ts []spmat.Triple
	for i := int32(0); i < n; i++ {
		j := (i + 1) % n
		ts = append(ts, spmat.Triple{Row: i, Col: j, Val: 1}, spmat.Triple{Row: j, Col: i, Val: 1})
	}
	m, _ := spmat.FromTriples(n, n, ts, nil)
	return m
}

func choose3(n int64) int64 { return n * (n - 1) * (n - 2) / 6 }

func TestCompleteGraphTriangles(t *testing.T) {
	for _, n := range []int32{3, 4, 5, 8, 12} {
		got, err := CountSerial(complete(n))
		if err != nil {
			t.Fatal(err)
		}
		if want := choose3(int64(n)); got != want {
			t.Errorf("K%d: %d triangles, want %d", n, got, want)
		}
	}
}

func TestCycleHasNoTriangles(t *testing.T) {
	for _, n := range []int32{4, 5, 10} {
		got, err := CountSerial(cycle(n))
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("C%d: %d triangles, want 0", n, got)
		}
	}
	// C3 is itself a triangle.
	if got, _ := CountSerial(cycle(3)); got != 1 {
		t.Errorf("C3: %d triangles, want 1", got)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	k4 := complete(4)
	withLoops := spmat.Add(k4, spmat.Identity(4), nil)
	got, err := CountSerial(withLoops)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("K4+loops: %d triangles, want 4", got)
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 10, Symmetrize: true, Seed: 3})
	want, err := CountSerial(adj)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.RunConfig{P: 4, L: 1, Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
		Opts: core.Options{ForceBatches: 2}}
	got, summary, err := CountDistributed(adj, rc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("distributed %d, serial %d", got, want)
	}
	if summary.Step(core.StepLocalMult).ComputeSeconds <= 0 {
		t.Error("no multiply time metered")
	}
}

func TestDistributedLayersAndBatches(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Symmetrize: true, Seed: 4})
	want, _ := CountSerial(adj)
	for _, cfg := range []struct{ p, l, b int }{{8, 2, 1}, {16, 4, 3}} {
		rc := core.RunConfig{P: cfg.p, L: cfg.l,
			Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
			Opts: core.Options{ForceBatches: cfg.b}}
		got, _, err := CountDistributed(adj, rc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("p=%d l=%d b=%d: %d triangles, want %d", cfg.p, cfg.l, cfg.b, got, want)
		}
	}
}

func TestRejectsRectangular(t *testing.T) {
	if _, err := CountSerial(spmat.New(3, 4)); err == nil {
		t.Error("rectangular adjacency accepted")
	}
	if _, _, err := CountDistributed(spmat.New(3, 4), core.RunConfig{P: 4, L: 1}); err == nil {
		t.Error("rectangular adjacency accepted by distributed path")
	}
}

func TestEmptyGraph(t *testing.T) {
	got, err := CountSerial(spmat.New(10, 10))
	if err != nil || got != 0 {
		t.Errorf("empty graph: %d triangles, err=%v", got, err)
	}
}

func TestMaskedAndUnmaskedAgree(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 7, EdgeFactor: 10, Symmetrize: true, Seed: 5})
	masked, err := CountSerial(adj)
	if err != nil {
		t.Fatal(err)
	}
	unmasked, err := CountSerialUnmasked(adj)
	if err != nil {
		t.Fatal(err)
	}
	if masked != unmasked {
		t.Errorf("masked %d vs unmasked %d", masked, unmasked)
	}
}
