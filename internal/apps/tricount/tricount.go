// Package tricount counts triangles in an undirected graph with the masked
// SpGEMM formulation the paper cites as an SpGEMM driver [3]: split the
// adjacency matrix into strictly lower (L) and upper (U) triangles; then
// the number of triangles is Σ ((L·U) .* L) — for an edge i>j, (L·U)(i,j)
// counts the common neighbors k smaller than both endpoints, so each
// triangle is counted exactly once.
package tricount

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// CountSerial counts triangles of the symmetric 0/1 adjacency matrix adj
// (self loops are ignored). It uses the masked kernel, which skips wedge
// entries outside the graph instead of materializing L·U.
func CountSerial(adj *spmat.CSC) (int64, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("tricount: adjacency matrix must be square, got %v", adj)
	}
	l := genmat.LowerTriangle(adj)
	u := genmat.UpperTriangle(adj)
	masked := localmm.MaskedSpGEMM(l, u, l, semiring.PlusTimes())
	return int64(masked.Sum() + 0.5), nil
}

// CountSerialUnmasked counts triangles by materializing the full wedge
// matrix L·U and masking afterwards — the ablation baseline for the masked
// kernel.
func CountSerialUnmasked(adj *spmat.CSC) (int64, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("tricount: adjacency matrix must be square, got %v", adj)
	}
	l := genmat.LowerTriangle(adj)
	u := genmat.UpperTriangle(adj)
	wedges := localmm.Multiply(l, u, semiring.PlusTimes())
	masked := spmat.Mask(wedges, l)
	return int64(masked.Sum() + 0.5), nil
}

// CountVia counts triangles with the L·U product delegated to mul —
// typically (*service.Client).MultiplyMatrices against a spgemmd daemon, so
// repeat counts on a resident graph skip probe work. The wedge matrix comes
// back whole (the batch-by-batch mask is an engine-local optimization) and
// is masked client-side.
func CountVia(adj *spmat.CSC, mul apps.MultiplyFunc) (int64, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("tricount: adjacency matrix must be square, got %v", adj)
	}
	l := genmat.LowerTriangle(adj)
	u := genmat.UpperTriangle(adj)
	wedges, err := mul(l, u, "plus-times")
	if err != nil {
		return 0, err
	}
	masked := spmat.Mask(wedges, l)
	return int64(masked.Sum() + 0.5), nil
}

// CountDistributed counts triangles using BatchedSUMMA3D for the L·U product
// on the simulated cluster; the mask-and-sum runs inside the per-batch hook,
// so the wedge matrix (which can dwarf the graph) never materializes — the
// memory-constrained pattern of Sec. I.
func CountDistributed(adj *spmat.CSC, rc core.RunConfig) (int64, *mpi.Summary, error) {
	if adj.Rows != adj.Cols {
		return 0, nil, fmt.Errorf("tricount: adjacency matrix must be square, got %v", adj)
	}
	l := genmat.LowerTriangle(adj)
	u := genmat.UpperTriangle(adj)

	// Per-rank partial sums, accumulated inside hooks: each hook sees the
	// local rows of a batch of wedge columns, masks them against the
	// matching L entries, and adds to its rank's partial count.
	partial := make([]int64, rc.P)
	hook := func(rank int) core.BatchHook {
		return func(_ int, globalCols []int32, c *spmat.CSC) *spmat.CSC {
			rowOff := core.RowOffsetFor(adj.Rows, rc.P, rc.L, rank)
			var sum int64
			for x := int32(0); x < c.Cols; x++ {
				gcol := globalCols[x]
				rows, vals := c.Column(x)
				for p := range rows {
					grow := rows[p] + rowOff
					if l.At(grow, gcol) != 0 {
						sum += int64(vals[p] + 0.5)
					}
				}
			}
			partial[rank] += sum
			return nil
		}
	}
	_, summary, err := core.MultiplyDiscard(l, u, rc, hook)
	if err != nil {
		return 0, nil, err
	}
	var total int64
	for _, s := range partial {
		total += s
	}
	return total, summary, nil
}
