package mcl

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// twoCliques builds two disjoint k-cliques joined by a single weak edge —
// the canonical MCL test graph.
func twoCliques(k int32, bridge float64) *spmat.CSC {
	n := 2 * k
	var ts []spmat.Triple
	addClique := func(off int32) {
		for i := int32(0); i < k; i++ {
			for j := int32(0); j < k; j++ {
				if i != j {
					ts = append(ts, spmat.Triple{Row: off + i, Col: off + j, Val: 1})
				}
			}
		}
	}
	addClique(0)
	addClique(k)
	if bridge > 0 {
		ts = append(ts, spmat.Triple{Row: 0, Col: k, Val: bridge}, spmat.Triple{Row: k, Col: 0, Val: bridge})
	}
	m, err := spmat.FromTriples(n, n, ts, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func TestClusterTwoCliques(t *testing.T) {
	a := twoCliques(5, 0.1)
	res, err := Cluster(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
	// All members of a clique share a label; the cliques differ.
	for i := int32(1); i < 5; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Errorf("node %d not with clique 1", i)
		}
		if res.Labels[5+i] != res.Labels[5] {
			t.Errorf("node %d not with clique 2", 5+i)
		}
	}
	if res.Labels[0] == res.Labels[5] {
		t.Error("cliques merged")
	}
}

func TestClusterDisconnectedComponents(t *testing.T) {
	a := twoCliques(4, 0) // no bridge at all
	res, err := Cluster(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Errorf("found %d clusters, want 2", res.NumClusters)
	}
}

func TestClusterDistributedMatchesSerial(t *testing.T) {
	a := twoCliques(6, 0.05)
	serial, err := Cluster(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Cluster(a, Config{
		Dist: &core.RunConfig{P: 4, L: 1, Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
			Opts: core.Options{ForceBatches: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumClusters != dist.NumClusters {
		t.Fatalf("serial %d clusters, distributed %d", serial.NumClusters, dist.NumClusters)
	}
	// Same partition up to relabeling.
	remap := map[int32]int32{}
	for i := range serial.Labels {
		if got, ok := remap[serial.Labels[i]]; ok {
			if got != dist.Labels[i] {
				t.Fatalf("partitions differ at node %d", i)
			}
		} else {
			remap[serial.Labels[i]] = dist.Labels[i]
		}
	}
	// Distributed iterations carry metering.
	if len(dist.Iters) == 0 || dist.Iters[0].Summary == nil {
		t.Error("distributed iterations missing summaries")
	}
	if dist.Iters[0].Batches < 2 {
		t.Errorf("expected forced batches, got %d", dist.Iters[0].Batches)
	}
}

func TestNormalizeColumns(t *testing.T) {
	m := spmat.Dense(3, 2, []float64{1, 4, 3, 0, 0, 6})
	NormalizeColumns(m)
	for j := int32(0); j < 2; j++ {
		_, vals := m.Column(j)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("column %d sums to %v", j, sum)
		}
	}
}

func TestNormalizeEmptyColumn(t *testing.T) {
	m := spmat.New(3, 3)
	NormalizeColumns(m) // must not panic or divide by zero
	if m.NNZ() != 0 {
		t.Error("empty matrix changed")
	}
}

func TestInflateSquares(t *testing.T) {
	m := spmat.Dense(2, 1, []float64{0.5, 0.25})
	Inflate(m, 2)
	if m.At(0, 0) != 0.25 || m.At(1, 0) != 0.0625 {
		t.Errorf("inflation wrong: %v %v", m.At(0, 0), m.At(1, 0))
	}
	// Non-integer power.
	m2 := spmat.Dense(1, 1, []float64{0.25})
	Inflate(m2, 1.5)
	if math.Abs(m2.At(0, 0)-0.125) > 1e-12 {
		t.Errorf("power 1.5 of 0.25 = %v, want 0.125", m2.At(0, 0))
	}
}

func TestPruneThresholdAndTopK(t *testing.T) {
	m := spmat.Dense(5, 1, []float64{0.5, 0.3, 0.15, 0.04, 0.01})
	Prune(m, 0.05, 2)
	if m.NNZ() != 2 {
		t.Fatalf("nnz=%d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 0.5 || m.At(1, 0) != 0.3 {
		t.Error("kept wrong entries")
	}
}

func TestPruneTies(t *testing.T) {
	m := spmat.Dense(4, 1, []float64{0.25, 0.25, 0.25, 0.25})
	Prune(m, 0, 2)
	if m.NNZ() != 2 {
		t.Fatalf("nnz=%d, want exactly topK=2 under ties", m.NNZ())
	}
}

func TestChaosConverged(t *testing.T) {
	// A doubly idempotent column (single 1) has chaos 0.
	m := spmat.Dense(2, 2, []float64{1, 0, 0, 1})
	if c := Chaos(m); c != 0 {
		t.Errorf("chaos=%v, want 0", c)
	}
	// Uniform column 0.5/0.5: max 0.5, sumsq 0.5 → chaos 0... use 3 entries.
	m2 := spmat.Dense(3, 1, []float64{0.5, 0.25, 0.25})
	want := 0.5 - (0.25 + 0.0625 + 0.0625)
	if c := Chaos(m2); math.Abs(c-want) > 1e-12 {
		t.Errorf("chaos=%v, want %v", c, want)
	}
}

func TestAddSelfLoops(t *testing.T) {
	m := spmat.Dense(3, 3, []float64{0, 0.5, 0, 0.5, 0.8, 0, 0, 0, 0})
	out := AddSelfLoops(m)
	if out.At(0, 0) != 0.5 { // column max
		t.Errorf("diag(0)=%v, want column max 0.5", out.At(0, 0))
	}
	if out.At(1, 1) != 0.8 { // already present, kept
		t.Errorf("diag(1)=%v, want 0.8", out.At(1, 1))
	}
	if out.At(2, 2) != 1 { // empty column defaults to 1
		t.Errorf("diag(2)=%v, want 1", out.At(2, 2))
	}
}

func TestInterpretStar(t *testing.T) {
	// Columns all point at row 0 → one cluster.
	m := spmat.Dense(3, 3, []float64{1, 1, 1, 0, 0, 0, 0, 0, 0})
	labels, n := Interpret(m)
	if n != 1 {
		t.Fatalf("clusters=%d, want 1", n)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("star nodes not in one cluster")
	}
}

func TestClusterRejectsRectangular(t *testing.T) {
	if _, err := Cluster(spmat.New(3, 4), Config{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
}
