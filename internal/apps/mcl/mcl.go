// Package mcl implements Markov clustering (van Dongen) in the style of
// HipMCL [19], the application the paper plugs BatchedSUMMA3D into (Sec. V-C,
// Fig 3). Each iteration expands (squares the stochastic matrix — the
// SpGEMM), inflates (entry-wise power + column normalization), and prunes
// (threshold and column top-k), repeating until the chaos measure converges;
// clusters are then read off the attractor structure.
//
// The expansion step can run serially or on the simulated cluster through
// BatchedSUMMA3D; in the distributed mode the threshold prune is applied
// inside the per-batch hook, exactly how HipMCL keeps A² from materializing.
package mcl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Config controls the clustering iteration.
type Config struct {
	// Inflation is the entry-wise power applied after expansion (default 2).
	Inflation float64
	// PruneThreshold drops entries below it after inflation (default 1e-4).
	PruneThreshold float64
	// TopK keeps at most this many entries per column after pruning
	// (default 64; HipMCL calls this "recovery/selection").
	TopK int
	// MaxIter bounds the iteration count (default 60).
	MaxIter int
	// ChaosTol declares convergence when the chaos measure falls below it
	// (default 1e-3).
	ChaosTol float64
	// Dist, when non-nil, runs every expansion on the simulated cluster.
	Dist *core.RunConfig
}

func (c Config) withDefaults() Config {
	if c.Inflation == 0 {
		c.Inflation = 2
	}
	if c.PruneThreshold == 0 {
		c.PruneThreshold = 1e-4
	}
	if c.TopK == 0 {
		c.TopK = 64
	}
	if c.MaxIter == 0 {
		c.MaxIter = 60
	}
	if c.ChaosTol == 0 {
		c.ChaosTol = 1e-3
	}
	return c
}

// IterStats records one iteration for Fig 3 style reporting.
type IterStats struct {
	Iter    int
	Batches int
	NNZ     int64
	Chaos   float64
	// Summary is the step metering of the distributed expansion (nil for
	// serial runs).
	Summary *mpi.Summary
}

// Result is the clustering outcome.
type Result struct {
	// Labels assigns every node a cluster id in [0, NumClusters).
	Labels []int32
	// NumClusters is the number of distinct clusters.
	NumClusters int
	// Iters holds per-iteration statistics.
	Iters []IterStats
	// Converged reports whether chaos fell below tolerance before MaxIter.
	Converged bool
}

// Cluster runs Markov clustering on the (symmetric, non-negative) similarity
// matrix a.
func Cluster(a *spmat.CSC, cfg Config) (*Result, error) {
	return cluster(a, cfg, func(m *spmat.CSC, cfg Config) (*spmat.CSC, int, *mpi.Summary, error) {
		return expand(m, cfg)
	})
}

// ClusterVia runs the same iteration with every expansion delegated to mul —
// typically (*service.Client).MultiplyMatrices, so a spgemmd daemon holding
// the stochastic matrix resident does the SpGEMM and its plan cache makes
// every expansion after the first probe-free. cfg.Dist is ignored; pruning
// happens client-side after each product (the hook-based in-flight prune is
// an engine-local optimization).
func ClusterVia(a *spmat.CSC, cfg Config, mul apps.MultiplyFunc) (*Result, error) {
	return cluster(a, cfg, func(m *spmat.CSC, _ Config) (*spmat.CSC, int, *mpi.Summary, error) {
		c, err := mul(m, m, "plus-times")
		return c, 1, nil, err
	})
}

func cluster(a *spmat.CSC, cfg Config, expand func(*spmat.CSC, Config) (*spmat.CSC, int, *mpi.Summary, error)) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mcl: matrix must be square, got %v", a)
	}
	cfg = cfg.withDefaults()
	m := AddSelfLoops(a)
	NormalizeColumns(m)
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		expanded, batches, summary, err := expand(m, cfg)
		if err != nil {
			return nil, err
		}
		Inflate(expanded, cfg.Inflation)
		Prune(expanded, cfg.PruneThreshold, cfg.TopK)
		NormalizeColumns(expanded)
		chaos := Chaos(expanded)
		res.Iters = append(res.Iters, IterStats{
			Iter: iter, Batches: batches, NNZ: expanded.NNZ(), Chaos: chaos, Summary: summary,
		})
		m = expanded
		if chaos < cfg.ChaosTol {
			res.Converged = true
			break
		}
	}
	res.Labels, res.NumClusters = Interpret(m)
	return res, nil
}

// expand computes M², serially or on the simulated cluster.
func expand(m *spmat.CSC, cfg Config) (*spmat.CSC, int, *mpi.Summary, error) {
	if cfg.Dist == nil {
		return localmm.Multiply(m, m, semiring.PlusTimes()), 1, nil, nil
	}
	rc := *cfg.Dist
	// Per-batch threshold pruning inside the hook: entry-wise, so it is
	// exact even though each rank only holds a row block of the column.
	thr := cfg.PruneThreshold
	hook := func(rank int) core.BatchHook {
		return func(_ int, _ []int32, c *spmat.CSC) *spmat.CSC {
			c.Filter(func(_, _ int32, v float64) bool { return v >= thr })
			return c
		}
	}
	got, results, summary, err := core.Multiply(m, m, rc, hook)
	if err != nil {
		return nil, 0, nil, err
	}
	return got, results[0].Batches, summary, nil
}

// AddSelfLoops returns a + I on the sparsity pattern (existing diagonal
// entries are kept, missing ones set to the column maximum as HipMCL does).
func AddSelfLoops(a *spmat.CSC) *spmat.CSC {
	var ts []spmat.Triple
	for j := int32(0); j < a.Cols; j++ {
		rows, vals := a.Column(j)
		var maxV float64
		hasDiag := false
		for p := range rows {
			if vals[p] > maxV {
				maxV = vals[p]
			}
			if rows[p] == j {
				hasDiag = true
			}
			ts = append(ts, spmat.Triple{Row: rows[p], Col: j, Val: vals[p]})
		}
		if !hasDiag {
			if maxV == 0 {
				maxV = 1
			}
			ts = append(ts, spmat.Triple{Row: j, Col: j, Val: maxV})
		}
	}
	out, err := spmat.FromTriples(a.Rows, a.Cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// NormalizeColumns scales each column to sum to one (column-stochastic), in
// place. Empty columns are left empty.
func NormalizeColumns(m *spmat.CSC) {
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		var sum float64
		for p := lo; p < hi; p++ {
			sum += m.Val[p]
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for p := lo; p < hi; p++ {
			m.Val[p] *= inv
		}
	}
}

// Inflate raises every entry to the given power, in place.
func Inflate(m *spmat.CSC, power float64) {
	if power == 1 {
		return
	}
	for i, v := range m.Val {
		m.Val[i] = pow(v, power)
	}
}

// pow is a positive-base power; inflation powers are usually 2 so square
// directly when possible.
func pow(v, p float64) float64 {
	if p == 2 {
		return v * v
	}
	// Inflation operates on probabilities (v ≥ 0).
	if v <= 0 {
		return 0
	}
	return math.Exp(p * math.Log(v))
}

// Prune drops entries below threshold and keeps at most topK entries per
// column (the largest ones, ties broken by lower row index), in place.
func Prune(m *spmat.CSC, threshold float64, topK int) {
	m.Filter(func(_, _ int32, v float64) bool { return v >= threshold })
	if topK <= 0 {
		return
	}
	newPtr := make([]int64, m.Cols+1)
	w := int64(0)
	var tmp []float64
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		newPtr[j] = w
		n := int(hi - lo)
		if n <= topK {
			copy(m.RowIdx[w:], m.RowIdx[lo:hi])
			copy(m.Val[w:], m.Val[lo:hi])
			w += int64(n)
			continue
		}
		// cut = topK-th largest value in the column.
		tmp = append(tmp[:0], m.Val[lo:hi]...)
		sort.Float64s(tmp)
		cut := tmp[n-topK]
		// Entries equal to the cut may exceed the budget; admit them in
		// stored order until topK is reached.
		atCutBudget := topK
		for _, v := range tmp[n-topK:] {
			if v > cut {
				atCutBudget--
			}
		}
		for p := lo; p < hi; p++ {
			v := m.Val[p]
			if v > cut {
				m.RowIdx[w] = m.RowIdx[p]
				m.Val[w] = v
				w++
			} else if v == cut && atCutBudget > 0 {
				m.RowIdx[w] = m.RowIdx[p]
				m.Val[w] = v
				w++
				atCutBudget--
			}
		}
	}
	newPtr[m.Cols] = w
	m.ColPtr = newPtr
	m.RowIdx = m.RowIdx[:w]
	m.Val = m.Val[:w]
}

// Chaos is the convergence measure: max over non-empty columns of
// (max entry − Σ entries²). A doubly idempotent matrix has chaos 0.
func Chaos(m *spmat.CSC) float64 {
	var chaos float64
	for j := int32(0); j < m.Cols; j++ {
		_, vals := m.Column(j)
		if len(vals) == 0 {
			continue
		}
		var max, sumsq float64
		for _, v := range vals {
			if v > max {
				max = v
			}
			sumsq += v * v
		}
		if c := max - sumsq; c > chaos {
			chaos = c
		}
	}
	return chaos
}

// Interpret extracts clusters from the converged matrix: each column joins
// the component of its strongest row (attractor), and connected components
// of that assignment are the clusters.
func Interpret(m *spmat.CSC) (labels []int32, numClusters int) {
	n := m.Cols
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int32) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for j := int32(0); j < n; j++ {
		rows, vals := m.Column(j)
		if len(rows) == 0 {
			continue
		}
		best, bestV := rows[0], vals[0]
		for p := 1; p < len(rows); p++ {
			if vals[p] > bestV || (vals[p] == bestV && rows[p] < best) {
				best, bestV = rows[p], vals[p]
			}
		}
		union(j, best)
	}
	labels = make([]int32, n)
	next := int32(0)
	idOf := map[int32]int32{}
	for j := int32(0); j < n; j++ {
		root := find(j)
		id, ok := idOf[root]
		if !ok {
			id = next
			idOf[root] = id
			next++
		}
		labels[j] = id
	}
	return labels, int(next)
}
