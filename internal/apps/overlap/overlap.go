// Package overlap detects overlapping sequence pairs the way BELLA [7] and
// PASTIS [15] do (Sec. V-G, Figs 10–11): given a reads×k-mers incidence
// matrix A, the product S = A·Aᵀ under the counting semiring holds at (i, j)
// the number of k-mers reads i and j share; pairs above a threshold are
// overlap candidates for alignment.
//
// The output S is quadratic in the worst case, so the distributed mode
// consumes it batch by batch through the BatchedSUMMA3D hook and keeps only
// the candidate pairs — the paper's motivating "form it in batches and
// discard" usage.
package overlap

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Pair is one candidate overlap: reads R1 < R2 sharing Shared k-mers.
type Pair struct {
	R1, R2 int32
	Shared int64
}

// sortPairs orders pairs lexicographically for deterministic output.
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].R1 != ps[b].R1 {
			return ps[a].R1 < ps[b].R1
		}
		return ps[a].R2 < ps[b].R2
	})
}

// FindPairsSerial computes candidate pairs with a serial SpGEMM. minShared
// is the smallest shared k-mer count to report (≥ 1).
func FindPairsSerial(a *spmat.CSC, minShared int64) ([]Pair, error) {
	if minShared < 1 {
		return nil, fmt.Errorf("overlap: minShared must be ≥ 1, got %d", minShared)
	}
	at := spmat.Transpose(a)
	s := localmm.Multiply(a, at, semiring.PlusPairs())
	var out []Pair
	for _, t := range s.Triples() {
		if t.Row < t.Col && int64(t.Val+0.5) >= minShared {
			out = append(out, Pair{R1: t.Row, R2: t.Col, Shared: int64(t.Val + 0.5)})
		}
	}
	sortPairs(out)
	return out, nil
}

// FindPairsDistributed computes candidate pairs with BatchedSUMMA3D on the
// simulated cluster. Pairs are harvested inside the per-batch hooks and the
// product matrix is discarded batch by batch.
func FindPairsDistributed(a *spmat.CSC, minShared int64, rc core.RunConfig) ([]Pair, *mpi.Summary, error) {
	if minShared < 1 {
		return nil, nil, fmt.Errorf("overlap: minShared must be ≥ 1, got %d", minShared)
	}
	at := spmat.Transpose(a)
	rc.Opts.Semiring = semiring.PlusPairs()

	var mu sync.Mutex
	var out []Pair
	hook := func(rank int) core.BatchHook {
		rowOff := core.RowOffsetFor(a.Rows, rc.P, rc.L, rank)
		return func(_ int, globalCols []int32, c *spmat.CSC) *spmat.CSC {
			var local []Pair
			for x := int32(0); x < c.Cols; x++ {
				gcol := globalCols[x]
				rows, vals := c.Column(x)
				for p := range rows {
					grow := rows[p] + rowOff
					shared := int64(vals[p] + 0.5)
					if grow < gcol && shared >= minShared {
						local = append(local, Pair{R1: grow, R2: gcol, Shared: shared})
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				out = append(out, local...)
				mu.Unlock()
			}
			return nil
		}
	}
	_, summary, err := core.MultiplyDiscard(a, at, rc, hook)
	if err != nil {
		return nil, nil, err
	}
	sortPairs(out)
	return out, summary, nil
}
