package overlap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// bruteForce counts shared k-mers for every read pair directly.
func bruteForce(a *spmat.CSC, minShared int64) []Pair {
	sets := make([]map[int32]bool, a.Rows)
	for i := range sets {
		sets[i] = map[int32]bool{}
	}
	for _, t := range a.Triples() {
		sets[t.Row][t.Col] = true
	}
	var out []Pair
	for i := int32(0); i < a.Rows; i++ {
		for j := i + 1; j < a.Rows; j++ {
			var shared int64
			for k := range sets[i] {
				if sets[j][k] {
					shared++
				}
			}
			if shared >= minShared {
				out = append(out, Pair{R1: i, R2: j, Shared: shared})
			}
		}
	}
	sortPairs(out)
	return out
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSerialMatchesBruteForce(t *testing.T) {
	a := genmat.Kmer(genmat.KmerConfig{Reads: 60, Kmers: 400, KmersPerRead: 8, Overlap: 0.5, Seed: 1})
	for _, min := range []int64{1, 2, 3} {
		got, err := FindPairsSerial(a, min)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(a, min)
		if !equalPairs(got, want) {
			t.Errorf("minShared=%d: %d pairs, brute force %d", min, len(got), len(want))
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	a := genmat.Kmer(genmat.KmerConfig{Reads: 48, Kmers: 600, KmersPerRead: 6, Overlap: 0.4, Seed: 2})
	want, err := FindPairsSerial(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ p, l, b int }{{4, 1, 1}, {8, 2, 2}, {16, 4, 3}} {
		rc := core.RunConfig{P: cfg.p, L: cfg.l,
			Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
			Opts: core.Options{ForceBatches: cfg.b}}
		got, summary, err := FindPairsDistributed(a, 2, rc)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(got, want) {
			t.Errorf("p=%d l=%d b=%d: %d pairs, want %d", cfg.p, cfg.l, cfg.b, len(got), len(want))
		}
		if summary == nil || summary.TotalSeconds() <= 0 {
			t.Error("missing metering")
		}
	}
}

func TestThresholdFilters(t *testing.T) {
	// Two reads share exactly 3 k-mers; a third shares 1 with each.
	ts := []spmat.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1}, {Row: 0, Col: 2, Val: 1}, {Row: 0, Col: 3, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 1}, {Row: 1, Col: 9, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 2, Col: 9, Val: 1},
	}
	a, _ := spmat.FromTriples(3, 10, ts, nil)
	got, err := FindPairsSerial(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].R1 != 0 || got[0].R2 != 1 || got[0].Shared != 3 {
		t.Fatalf("pairs=%v, want [(0,1,3)]", got)
	}
	got1, _ := FindPairsSerial(a, 1)
	if len(got1) != 3 {
		t.Errorf("minShared=1: %d pairs, want 3", len(got1))
	}
}

func TestRejectsBadThreshold(t *testing.T) {
	a := spmat.New(2, 2)
	if _, err := FindPairsSerial(a, 0); err == nil {
		t.Error("minShared=0 accepted")
	}
	if _, _, err := FindPairsDistributed(a, 0, core.RunConfig{P: 1, L: 1}); err == nil {
		t.Error("minShared=0 accepted by distributed path")
	}
}

func TestNoOverlapsNoPairs(t *testing.T) {
	// Disjoint k-mer sets → no pairs.
	ts := []spmat.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
	}
	a, _ := spmat.FromTriples(3, 3, ts, nil)
	got, err := FindPairsSerial(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("pairs=%v, want none", got)
	}
}
