package matching

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

func TestTwoVertexPair(t *testing.T) {
	// Two vertices sharing two hyperedges must match.
	ts := []spmat.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
	}
	a, _ := spmat.FromTriples(2, 2, ts, nil)
	res, err := HeavyConnectivitySerial(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Mate[0] != 1 || res.Mate[1] != 0 {
		t.Errorf("result %+v", res)
	}
	if res.Weight != 2 {
		t.Errorf("weight=%v, want 2 shared hyperedges", res.Weight)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPrefersHeavierPair(t *testing.T) {
	// Vertices 0-1 share 3 hyperedges, 1-2 share 1: greedy must pick (0,1)
	// and leave 2 unmatched.
	var ts []spmat.Triple
	for e := int32(0); e < 3; e++ {
		ts = append(ts, spmat.Triple{Row: 0, Col: e, Val: 1}, spmat.Triple{Row: 1, Col: e, Val: 1})
	}
	ts = append(ts, spmat.Triple{Row: 1, Col: 3, Val: 1}, spmat.Triple{Row: 2, Col: 3, Val: 1})
	a, _ := spmat.FromTriples(3, 4, ts, nil)
	res, err := HeavyConnectivitySerial(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mate[0] != 1 || res.Mate[2] != -1 {
		t.Errorf("mates=%v", res.Mate)
	}
	if res.Weight != 3 {
		t.Errorf("weight=%v", res.Weight)
	}
}

func TestMatchingIsMaximal(t *testing.T) {
	// On a random incidence matrix, no two unmatched vertices may share a
	// hyperedge (maximality of greedy matching).
	a := genmat.Kmer(genmat.KmerConfig{Reads: 60, Kmers: 120, KmersPerRead: 5, Overlap: 0.5, Seed: 3})
	res, err := HeavyConnectivitySerial(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	sets := make([]map[int32]bool, a.Rows)
	for i := range sets {
		sets[i] = map[int32]bool{}
	}
	for _, tr := range a.Triples() {
		sets[tr.Row][tr.Col] = true
	}
	for u := int32(0); u < a.Rows; u++ {
		if res.Mate[u] != -1 {
			continue
		}
		for v := u + 1; v < a.Rows; v++ {
			if res.Mate[v] != -1 {
				continue
			}
			for k := range sets[u] {
				if sets[v][k] {
					t.Fatalf("unmatched vertices %d and %d share hyperedge %d", u, v, k)
				}
			}
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	a := genmat.Kmer(genmat.KmerConfig{Reads: 48, Kmers: 96, KmersPerRead: 4, Overlap: 0.4, Seed: 4})
	want, err := HeavyConnectivitySerial(a)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.RunConfig{P: 8, L: 2,
		Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
		Opts: core.Options{ForceBatches: 2}}
	got, summary, err := HeavyConnectivityDistributed(a, rc)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy matcher is deterministic given the same candidates, so the
	// matchings must be identical.
	if got.Matched != want.Matched || got.Weight != want.Weight {
		t.Errorf("distributed: %d pairs weight %v; serial: %d pairs weight %v",
			got.Matched, got.Weight, want.Matched, want.Weight)
	}
	for v := range want.Mate {
		if got.Mate[v] != want.Mate[v] {
			t.Fatalf("mate of %d differs: %d vs %d", v, got.Mate[v], want.Mate[v])
		}
	}
	if summary.Step(core.StepLocalMult).ComputeSeconds <= 0 {
		t.Error("no multiply time metered")
	}
}

func TestEmptyIncidenceRejected(t *testing.T) {
	if _, err := HeavyConnectivitySerial(spmat.New(0, 5)); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	r := &Result{Mate: []int32{1, -1}}
	if err := r.Validate(); err == nil {
		t.Error("asymmetric matching accepted")
	}
	r2 := &Result{Mate: []int32{0}}
	if err := r2.Validate(); err == nil {
		t.Error("self-match accepted")
	}
}
