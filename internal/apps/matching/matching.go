// Package matching implements heavy-connectivity (inner-product) matching,
// the hypergraph-coarsening step the paper cites as a batched-SpGEMM
// application [16–18]: before coarsening, a multilevel partitioner computes
// the number of shared hyperedges between all vertex pairs — the product
// A·Aᵀ of the vertex×hyperedge incidence matrix — and greedily matches
// vertices with the heaviest connectivity. Zoltan performs this SpGEMM in
// batches precisely because the product does not fit in memory; here each
// batch of candidate columns feeds the greedy matcher and is discarded.
package matching

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Result is a matching of the vertices.
type Result struct {
	// Mate[v] is the vertex matched with v, or -1 when v is unmatched.
	Mate []int32
	// Matched counts the matched pairs.
	Matched int
	// Weight is the total shared-hyperedge weight of the matching.
	Weight float64
}

// candidate is one scored vertex pair.
type candidate struct {
	u, v   int32
	weight float64
}

// greedy builds a maximal matching from candidates in decreasing weight
// (ties broken by vertex ids for determinism).
func greedy(n int32, cands []candidate) *Result {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].weight != cands[b].weight {
			return cands[a].weight > cands[b].weight
		}
		if cands[a].u != cands[b].u {
			return cands[a].u < cands[b].u
		}
		return cands[a].v < cands[b].v
	})
	res := &Result{Mate: make([]int32, n)}
	for i := range res.Mate {
		res.Mate[i] = -1
	}
	for _, c := range cands {
		if res.Mate[c.u] == -1 && res.Mate[c.v] == -1 {
			res.Mate[c.u] = c.v
			res.Mate[c.v] = c.u
			res.Matched++
			res.Weight += c.weight
		}
	}
	return res
}

// HeavyConnectivitySerial matches the rows (vertices) of the incidence
// matrix a (vertices × hyperedges) by shared-hyperedge count, serially.
func HeavyConnectivitySerial(a *spmat.CSC) (*Result, error) {
	if a.Rows < 1 {
		return nil, fmt.Errorf("matching: empty incidence matrix")
	}
	s := localmm.Multiply(a, spmat.Transpose(a), semiring.PlusPairs())
	var cands []candidate
	for _, t := range s.Triples() {
		if t.Row < t.Col && t.Val > 0 {
			cands = append(cands, candidate{u: t.Row, v: t.Col, weight: t.Val})
		}
	}
	return greedy(a.Rows, cands), nil
}

// HeavyConnectivityDistributed computes the candidate weights with
// BatchedSUMMA3D, collecting candidates batch by batch (the connectivity
// matrix itself is discarded), then runs the same greedy matcher.
func HeavyConnectivityDistributed(a *spmat.CSC, rc core.RunConfig) (*Result, *mpi.Summary, error) {
	if a.Rows < 1 {
		return nil, nil, fmt.Errorf("matching: empty incidence matrix")
	}
	at := spmat.Transpose(a)
	rc.Opts.Semiring = semiring.PlusPairs()
	var mu sync.Mutex
	var cands []candidate
	hook := func(rank int) core.BatchHook {
		rowOff := core.RowOffsetFor(a.Rows, rc.P, rc.L, rank)
		return func(_ int, globalCols []int32, c *spmat.CSC) *spmat.CSC {
			var local []candidate
			for x := int32(0); x < c.Cols; x++ {
				gcol := globalCols[x]
				rows, vals := c.Column(x)
				for p := range rows {
					grow := rows[p] + rowOff
					if grow < gcol && vals[p] > 0 {
						local = append(local, candidate{u: grow, v: gcol, weight: vals[p]})
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				cands = append(cands, local...)
				mu.Unlock()
			}
			return nil
		}
	}
	_, summary, err := core.MultiplyDiscard(a, at, rc, hook)
	if err != nil {
		return nil, nil, err
	}
	return greedy(a.Rows, cands), summary, nil
}

// Validate checks matching invariants: symmetry and no self-matches.
func (r *Result) Validate() error {
	for v, m := range r.Mate {
		if m == -1 {
			continue
		}
		if m < 0 || int(m) >= len(r.Mate) {
			return fmt.Errorf("matching: mate of %d out of range: %d", v, m)
		}
		if int32(v) == m {
			return fmt.Errorf("matching: vertex %d matched with itself", v)
		}
		if r.Mate[m] != int32(v) {
			return fmt.Errorf("matching: asymmetric pair (%d, %d)", v, m)
		}
	}
	return nil
}
