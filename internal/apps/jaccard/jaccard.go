// Package jaccard computes all-pairs Jaccard similarity between the rows of
// a binary feature matrix via SpGEMM, the formulation of Besta et al. [14]
// the paper cites as a batching application: with S = A·Aᵀ counting shared
// features and deg(i) the feature count of row i,
//
//	J(i, j) = S(i, j) / (deg(i) + deg(j) − S(i, j)).
//
// The similarity matrix is quadratic in the worst case, so the distributed
// mode forms S in batches and converts each batch to thresholded Jaccard
// pairs before discarding it — the paper's "form it in batches, perform the
// required computation on it, and discard" pattern verbatim.
package jaccard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Pair is one similar pair with its Jaccard coefficient.
type Pair struct {
	R1, R2  int32
	Jaccard float64
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].R1 != ps[b].R1 {
			return ps[a].R1 < ps[b].R1
		}
		return ps[a].R2 < ps[b].R2
	})
}

// jaccardOf converts a shared-feature count into the coefficient.
func jaccardOf(shared float64, degI, degJ int64) float64 {
	union := float64(degI+degJ) - shared
	if union <= 0 {
		return 0
	}
	return shared / union
}

// AllPairsSerial returns every row pair with Jaccard similarity ≥ minJ
// (0 < minJ ≤ 1), computed with a serial SpGEMM.
func AllPairsSerial(a *spmat.CSC, minJ float64) ([]Pair, error) {
	if minJ <= 0 || minJ > 1 {
		return nil, fmt.Errorf("jaccard: threshold %v outside (0, 1]", minJ)
	}
	deg := rowDegrees(a)
	s := localmm.Multiply(a, spmat.Transpose(a), semiring.PlusPairs())
	var out []Pair
	for _, t := range s.Triples() {
		if t.Row >= t.Col {
			continue
		}
		if j := jaccardOf(t.Val, deg[t.Row], deg[t.Col]); j >= minJ {
			out = append(out, Pair{R1: t.Row, R2: t.Col, Jaccard: j})
		}
	}
	sortPairs(out)
	return out, nil
}

// AllPairsDistributed computes the same pairs with BatchedSUMMA3D,
// harvesting each batch through the hook and discarding the similarity
// matrix.
func AllPairsDistributed(a *spmat.CSC, minJ float64, rc core.RunConfig) ([]Pair, *mpi.Summary, error) {
	if minJ <= 0 || minJ > 1 {
		return nil, nil, fmt.Errorf("jaccard: threshold %v outside (0, 1]", minJ)
	}
	deg := rowDegrees(a)
	at := spmat.Transpose(a)
	rc.Opts.Semiring = semiring.PlusPairs()

	var mu sync.Mutex
	var out []Pair
	hook := func(rank int) core.BatchHook {
		rowOff := core.RowOffsetFor(a.Rows, rc.P, rc.L, rank)
		return func(_ int, globalCols []int32, c *spmat.CSC) *spmat.CSC {
			var local []Pair
			for x := int32(0); x < c.Cols; x++ {
				gcol := globalCols[x]
				rows, vals := c.Column(x)
				for p := range rows {
					grow := rows[p] + rowOff
					if grow >= gcol {
						continue
					}
					if j := jaccardOf(vals[p], deg[grow], deg[gcol]); j >= minJ {
						local = append(local, Pair{R1: grow, R2: gcol, Jaccard: j})
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				out = append(out, local...)
				mu.Unlock()
			}
			return nil
		}
	}
	_, summary, err := core.MultiplyDiscard(a, at, rc, hook)
	if err != nil {
		return nil, nil, err
	}
	sortPairs(out)
	return out, summary, nil
}

// rowDegrees counts the stored entries per row (set sizes).
func rowDegrees(a *spmat.CSC) []int64 {
	return a.RowCounts()
}
