package jaccard

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// bruteForce computes Jaccard for all pairs directly from sets.
func bruteForce(a *spmat.CSC, minJ float64) []Pair {
	sets := make([]map[int32]bool, a.Rows)
	for i := range sets {
		sets[i] = map[int32]bool{}
	}
	for _, t := range a.Triples() {
		sets[t.Row][t.Col] = true
	}
	var out []Pair
	for i := int32(0); i < a.Rows; i++ {
		for j := i + 1; j < a.Rows; j++ {
			var inter int
			for k := range sets[i] {
				if sets[j][k] {
					inter++
				}
			}
			union := len(sets[i]) + len(sets[j]) - inter
			if union == 0 {
				continue
			}
			jc := float64(inter) / float64(union)
			if jc >= minJ {
				out = append(out, Pair{R1: i, R2: j, Jaccard: jc})
			}
		}
	}
	sortPairs(out)
	return out
}

func pairsEqual(a, b []Pair, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].R1 != b[i].R1 || a[i].R2 != b[i].R2 {
			return false
		}
		if math.Abs(a[i].Jaccard-b[i].Jaccard) > tol {
			return false
		}
	}
	return true
}

func TestSerialMatchesBruteForce(t *testing.T) {
	a := genmat.Kmer(genmat.KmerConfig{Reads: 50, Kmers: 300, KmersPerRead: 8, Overlap: 0.5, Seed: 1})
	for _, minJ := range []float64{0.05, 0.2, 0.5} {
		got, err := AllPairsSerial(a, minJ)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(a, minJ)
		if !pairsEqual(got, want, 1e-12) {
			t.Errorf("minJ=%v: %d pairs, brute force %d", minJ, len(got), len(want))
		}
	}
}

func TestIdenticalRowsHaveJaccardOne(t *testing.T) {
	ts := []spmat.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 5, Val: 1},
	}
	a, _ := spmat.FromTriples(3, 6, ts, nil)
	pairs, err := AllPairsSerial(a, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].R1 != 0 || pairs[0].R2 != 1 || pairs[0].Jaccard != 1 {
		t.Errorf("pairs=%v, want exactly (0,1,1.0)", pairs)
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	a := genmat.Kmer(genmat.KmerConfig{Reads: 40, Kmers: 400, KmersPerRead: 7, Overlap: 0.4, Seed: 2})
	want, err := AllPairsSerial(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ p, l, b int }{{4, 1, 2}, {16, 4, 3}} {
		rc := core.RunConfig{P: cfg.p, L: cfg.l,
			Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
			Opts: core.Options{ForceBatches: cfg.b}}
		got, summary, err := AllPairsDistributed(a, 0.1, rc)
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(got, want, 1e-12) {
			t.Errorf("p=%d l=%d: %d pairs, want %d", cfg.p, cfg.l, len(got), len(want))
		}
		if summary == nil {
			t.Error("missing summary")
		}
	}
}

func TestRejectsBadThreshold(t *testing.T) {
	a := spmat.New(2, 2)
	for _, bad := range []float64{0, -1, 1.5} {
		if _, err := AllPairsSerial(a, bad); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
		if _, _, err := AllPairsDistributed(a, bad, core.RunConfig{P: 1, L: 1}); err == nil {
			t.Errorf("threshold %v accepted by distributed path", bad)
		}
	}
}

func TestDisjointRowsNoPairs(t *testing.T) {
	ts := []spmat.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}}
	a, _ := spmat.FromTriples(2, 2, ts, nil)
	pairs, err := AllPairsSerial(a, 0.01)
	if err != nil || len(pairs) != 0 {
		t.Errorf("pairs=%v err=%v, want none", pairs, err)
	}
}
