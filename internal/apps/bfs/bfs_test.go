package bfs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// refBFS is a queue-based reference implementation.
func refBFS(adj *spmat.CSC, source int32) []int32 {
	n := adj.Rows
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	queue := []int32{source}
	// Neighbors of j are the rows of column j (j → row edges).
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		rows, _ := adj.Column(v)
		for _, w := range rows {
			if level[w] == -1 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return level
}

func pathGraph(n int32) *spmat.CSC {
	var ts []spmat.Triple
	for i := int32(0); i+1 < n; i++ {
		ts = append(ts, spmat.Triple{Row: i + 1, Col: i, Val: 1}, spmat.Triple{Row: i, Col: i + 1, Val: 1})
	}
	m, _ := spmat.FromTriples(n, n, ts, nil)
	return m
}

func TestPathGraphLevels(t *testing.T) {
	adj := pathGraph(6)
	levels, err := MultiSourceSerial(adj, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 6; v++ {
		if levels.At(v, 0) != v {
			t.Errorf("level(%d)=%d, want %d", v, levels.At(v, 0), v)
		}
	}
	ecc := levels.Eccentricity()
	if ecc[0] != 5 {
		t.Errorf("eccentricity=%d, want 5", ecc[0])
	}
}

func TestMultiSourceMatchesReference(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 7, EdgeFactor: 6, Symmetrize: true, Seed: 1})
	sources := []int32{0, 7, 33, 100}
	levels, err := MultiSourceSerial(adj, sources)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range sources {
		want := refBFS(adj, s)
		for v := int32(0); v < adj.Rows; v++ {
			if got := levels.At(v, int32(si)); got != want[v] {
				t.Fatalf("source %d vertex %d: level %d, want %d", s, v, got, want[v])
			}
		}
	}
}

func TestDisconnectedUnreachable(t *testing.T) {
	// Two disconnected edges: 0–1 and 2–3.
	ts := []spmat.Triple{
		{Row: 1, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 3, Col: 2, Val: 1}, {Row: 2, Col: 3, Val: 1},
	}
	adj, _ := spmat.FromTriples(4, 4, ts, nil)
	levels, err := MultiSourceSerial(adj, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if levels.At(2, 0) != -1 || levels.At(3, 0) != -1 {
		t.Error("unreachable vertices should stay at -1")
	}
	if got := levels.Reached(); got[0] != 2 {
		t.Errorf("reached=%d, want 2", got[0])
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Symmetrize: true, Seed: 2})
	sources := []int32{1, 5, 9, 13, 21, 40}
	want, err := MultiSourceSerial(adj, sources)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.RunConfig{P: 4, L: 1,
		Cost: mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9},
		Opts: core.Options{ForceBatches: 2}}
	got, err := MultiSourceDistributed(adj, sources, rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Level {
		if want.Level[i] != got.Level[i] {
			t.Fatalf("level[%d]: distributed %d, serial %d", i, got.Level[i], want.Level[i])
		}
	}
}

func TestRejectsBadInputs(t *testing.T) {
	if _, err := MultiSourceSerial(spmat.New(3, 4), []int32{0}); err == nil {
		t.Error("rectangular adjacency accepted")
	}
	adj := pathGraph(4)
	if _, err := MultiSourceSerial(adj, nil); err == nil {
		t.Error("empty source list accepted")
	}
	if _, err := MultiSourceSerial(adj, []int32{9}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestDirectedBFS(t *testing.T) {
	// Directed cycle 0→1→2→0 (edge j→row means adj(row,j)=1).
	ts := []spmat.Triple{
		{Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1}, {Row: 0, Col: 2, Val: 1},
	}
	adj, _ := spmat.FromTriples(3, 3, ts, nil)
	levels, err := MultiSourceSerial(adj, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if levels.At(1, 0) != 1 || levels.At(2, 0) != 2 {
		t.Errorf("directed levels: %d %d", levels.At(1, 0), levels.At(2, 0))
	}
}
