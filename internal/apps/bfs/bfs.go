// Package bfs implements multi-source breadth-first search as iterated
// SpGEMM over the Boolean semiring — the linear-algebraic graph-processing
// formulation behind the GraphBLAS-style applications the paper cites
// ([3]–[5]): a frontier matrix F (vertices × sources) is expanded as
// F' = A·F, masked against the already-visited set, until all frontiers are
// empty. Running many sources at once turns BFS into exactly the kind of
// sparse×sparse product BatchedSUMMA3D accelerates, and the per-batch hook
// lets the level assignment happen without materializing more than a batch
// of the expanded frontier.
package bfs

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Levels holds the BFS result: Level[v][s] is the distance of vertex v from
// source s, or -1 when unreachable. Stored flat: index v*numSources+s.
type Levels struct {
	NumVertices, NumSources int32
	Level                   []int32
}

// At returns the level of vertex v from source s.
func (l *Levels) At(v, s int32) int32 { return l.Level[int(v)*int(l.NumSources)+int(s)] }

// set records a level.
func (l *Levels) set(v, s, lev int32) { l.Level[int(v)*int(l.NumSources)+int(s)] = lev }

// newLevels initializes all levels to -1.
func newLevels(n, s int32) *Levels {
	l := &Levels{NumVertices: n, NumSources: s, Level: make([]int32, int(n)*int(s))}
	for i := range l.Level {
		l.Level[i] = -1
	}
	return l
}

// MultiSourceSerial runs BFS from the given sources on the adjacency matrix
// adj (edges column→row, i.e. adj(i,j)≠0 means j→i; symmetric matrices give
// undirected BFS). The expansion product runs serially.
func MultiSourceSerial(adj *spmat.CSC, sources []int32) (*Levels, error) {
	sr := semiring.BoolOrAnd()
	return multiSource(adj, sources, func(a, f *spmat.CSC) (*spmat.CSC, error) {
		return localmm.HashSpGEMMSorted(a, f, sr), nil
	})
}

// MultiSourceDistributed runs the same search with every frontier expansion
// executed by BatchedSUMMA3D on the simulated cluster.
func MultiSourceDistributed(adj *spmat.CSC, sources []int32, rc core.RunConfig) (*Levels, error) {
	return multiSource(adj, sources, func(a, f *spmat.CSC) (*spmat.CSC, error) {
		next, _, _, err := core.Multiply(a, f, rc, nil)
		return next, err
	})
}

// MultiSourceVia runs the search with every frontier expansion delegated to
// mul over the bool-or-and semiring — typically
// (*service.Client).MultiplyMatrices against a spgemmd daemon holding the
// adjacency matrix resident, so each depth's product replans from cache.
func MultiSourceVia(adj *spmat.CSC, sources []int32, mul apps.MultiplyFunc) (*Levels, error) {
	return multiSource(adj, sources, func(a, f *spmat.CSC) (*spmat.CSC, error) {
		return mul(a, f, "bool-or-and")
	})
}

func multiSource(adj *spmat.CSC, sources []int32, expand func(adj, frontier *spmat.CSC) (*spmat.CSC, error)) (*Levels, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("bfs: adjacency matrix must be square, got %v", adj)
	}
	n := adj.Rows
	ns := int32(len(sources))
	if ns == 0 {
		return nil, fmt.Errorf("bfs: no sources")
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("bfs: source %d out of range [0,%d)", s, n)
		}
	}
	levels := newLevels(n, ns)
	// Initial frontier: one column per source.
	ts := make([]spmat.Triple, ns)
	for c, s := range sources {
		ts[c] = spmat.Triple{Row: s, Col: int32(c), Val: 1}
		levels.set(s, int32(c), 0)
	}
	frontier, err := spmat.FromTriples(n, ns, ts, nil)
	if err != nil {
		return nil, err
	}
	for depth := int32(1); frontier.NNZ() > 0 && depth <= n; depth++ {
		next, err := expand(adj, frontier)
		if err != nil {
			return nil, err
		}
		// Mask: keep only newly discovered (vertex, source) pairs.
		next.Filter(func(v, s int32, _ float64) bool {
			return levels.At(v, s) == -1
		})
		for _, t := range next.Triples() {
			levels.set(t.Row, t.Col, depth)
		}
		frontier = next
	}
	return levels, nil
}

// Eccentricity returns the maximum finite level per source (the BFS
// eccentricity of each source within its component).
func (l *Levels) Eccentricity() []int32 {
	out := make([]int32, l.NumSources)
	for v := int32(0); v < l.NumVertices; v++ {
		for s := int32(0); s < l.NumSources; s++ {
			if lev := l.At(v, s); lev > out[s] {
				out[s] = lev
			}
		}
	}
	return out
}

// Reached counts the vertices reachable from each source (including the
// source itself).
func (l *Levels) Reached() []int64 {
	out := make([]int64, l.NumSources)
	for v := int32(0); v < l.NumVertices; v++ {
		for s := int32(0); s < l.NumSources; s++ {
			if l.At(v, s) >= 0 {
				out[s]++
			}
		}
	}
	return out
}
