// Package apps hosts the SpGEMM-driven applications the paper cites as the
// motivation for extreme-scale sparse multiply — Markov clustering (HipMCL,
// Sec. V-C), triangle counting, multi-source BFS, protein-overlap detection,
// Jaccard similarity, and hypergraph matching — each in its own subpackage.
//
// Every application reduces to repeated SpGEMM over some semiring, so the
// engine behind the product is swappable. The subpackages expose up to three
// variants per algorithm:
//
//   - ...Serial: the in-process hash kernel, the correctness baseline.
//   - ...Distributed: BatchedSUMMA3D on the simulated cluster, with
//     per-batch hooks so intermediates (wedge matrices, expanded frontiers)
//     never materialize — the paper's memory-constrained pattern.
//   - ...Via: any engine behind a MultiplyFunc — in particular a remote
//     spgemmd daemon through (*service.Client).MultiplyMatrices, which has
//     exactly this signature. Iterated apps are where the service's plan
//     cache pays off: every expansion after the first skips probe work.
//
// This file defines the shared MultiplyFunc contract; it lives here rather
// than in a subpackage so mcl, bfs, and tricount can share it without
// importing each other.
package apps

import (
	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// MultiplyFunc is the one capability an application needs from an SpGEMM
// engine: C = A·B over a named semiring (semiring.ByName spellings; ""
// means plus-times). (*service.Client).MultiplyMatrices satisfies it
// directly, making every ...Via application a service client.
type MultiplyFunc func(a, b *spmat.CSC, semiringName string) (*spmat.CSC, error)

// Serial returns a MultiplyFunc backed by the in-process sorted hash kernel
// — the reference engine the ...Via variants are tested against.
func Serial() MultiplyFunc {
	return func(a, b *spmat.CSC, name string) (*spmat.CSC, error) {
		sr, err := semiring.ByName(name)
		if err != nil {
			return nil, err
		}
		return localmm.HashSpGEMMSorted(a, b, sr), nil
	}
}
