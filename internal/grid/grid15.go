package grid

import (
	"fmt"

	"repro/internal/mpi"
)

// Grid15 is one rank's view of a 1.5D process grid: p ranks arranged as a
// ring of S = p/C positions replicated across C layers, the layout of
// Koanantakool et al.'s 1.5D sparse×dense algorithms (ColA, InnerABC). The
// stationary operands are partitioned over ring positions and replicated
// across layers; the moving operand rotates around each layer's ring, with
// the layers covering disjoint block subsets that a final fiber reduction
// combines. C = 1 degenerates to the pure 1D ring algorithm.
type Grid15 struct {
	// World spans all p ranks.
	World *mpi.Comm
	// S is the ring size (number of block positions), S = p/C.
	S int
	// C is the replication factor (number of layers).
	C int
	// J, K are this rank's ring position and layer.
	J, K int
	// Ring spans the S ranks of layer K, ordered by position; the per-round
	// shifts of the moving operand run along it.
	Ring *mpi.Comm
	// Fiber spans the C ranks at position J across layers, ordered by layer;
	// the one-time replication of the stationary operand and the final
	// partial-result reduction run along it.
	Fiber *mpi.Comm
	// Skew spans the C ranks whose ring walk starts at the same block — rank
	// (j, k) starts at block (j + k·S/C) mod S — ordered by layer, with the
	// block's canonical layer-0 owner first. The one-time distribution of the
	// moving operand's starting blocks runs along it.
	Skew *mpi.Comm
}

// Valid15 reports whether p ranks support replication factor c: the layers
// must tile the ring walk exactly, which needs c | p and c | (p/c).
func Valid15(p, c int) error {
	if c <= 0 || p <= 0 {
		return fmt.Errorf("grid: 1.5D with p=%d c=%d", p, c)
	}
	if p%c != 0 {
		return fmt.Errorf("grid: %d ranks cannot form %d layers", p, c)
	}
	if (p/c)%c != 0 {
		return fmt.Errorf("grid: replication %d does not divide ring size %d (need c² | p)", c, p/c)
	}
	return nil
}

// New15 builds the 1.5D grid with replication c over the world communicator.
// Rank r has layer k = r / s and position j = r mod s. Every rank of world
// must call New15 with the same c.
func New15(world *mpi.Comm, c int) (*Grid15, error) {
	p := world.Size()
	if err := Valid15(p, c); err != nil {
		return nil, err
	}
	s := p / c
	r := world.Rank()
	g := &Grid15{World: world, S: s, C: c, J: r % s, K: r / s}
	// Disjoint color spaces, same discipline as Grid3D.
	g.Ring = world.Split(g.K, g.J)
	g.Fiber = world.Split(c+g.J, g.K)
	g.Skew = world.Split(c+s+(g.J+g.K*(s/c))%s, g.K)
	return g, nil
}

// R returns the number of ring rounds per rank: each layer walks S/C of the
// S blocks, so the C layers jointly cover all of them exactly once.
func (g *Grid15) R() int { return g.S / g.C }

// StartBlock returns the block index this rank's ring walk starts at.
func (g *Grid15) StartBlock() int { return (g.J + g.K*g.R()) % g.S }

// RankOf returns the world rank at ring position j, layer k.
func (g *Grid15) RankOf(j, k int) int { return k*g.S + j }

// String describes the grid shape, e.g. "8x2 (1.5D)".
func (g *Grid15) String() string { return fmt.Sprintf("%dx%d (1.5D)", g.S, g.C) }
