// Package grid builds the paper's √(p/l) × √(p/l) × l process grids on top
// of the simulated MPI runtime and derives the communicators every SUMMA step
// needs: the 2D layer grid, process rows and columns within a layer, and the
// fibers that connect the same (i, j) position across layers.
package grid

import (
	"fmt"

	"repro/internal/mpi"
)

// Grid3D is one rank's view of a 3D process grid. A 2D grid is the special
// case L == 1.
type Grid3D struct {
	// World spans all p ranks of the grid.
	World *mpi.Comm
	// Q is the side of the square per-layer grid: Q = √(p/L).
	Q int
	// L is the number of layers.
	L int
	// I, J, K are this rank's row, column, and layer coordinates.
	I, J, K int
	// Layer spans the Q×Q ranks of layer K, ordered row-major by (I, J); it
	// is the P3D(:,:,k) communicator of Algorithms 1–3.
	Layer *mpi.Comm
	// Row spans the ranks P3D(I, :, K); A is broadcast along it.
	Row *mpi.Comm
	// Col spans the ranks P3D(:, J, K); B is broadcast along it.
	Col *mpi.Comm
	// Fiber spans the ranks P3D(I, J, :), ordered by layer; the AllToAll of
	// Algorithm 2 runs along it.
	Fiber *mpi.Comm
}

// SideFor returns the per-layer grid side q = √(p/l), or an error when p is
// not l times a perfect square.
func SideFor(p, l int) (int, error) {
	if l <= 0 || p <= 0 || p%l != 0 {
		return 0, fmt.Errorf("grid: %d ranks cannot form %d layers", p, l)
	}
	per := p / l
	q := 1
	for q*q < per {
		q++
	}
	if q*q != per {
		return 0, fmt.Errorf("grid: %d ranks per layer is not a perfect square", per)
	}
	return q, nil
}

// ValidP reports whether p ranks can form an l-layer grid with square layers.
func ValidP(p, l int) bool {
	_, err := SideFor(p, l)
	return err == nil
}

// New builds the 3D grid with l layers over the world communicator. Rank r
// has coordinates k = r / (q·q), i = (r mod q·q) / q, j = r mod q. Every rank
// of world must call New with the same l.
func New(world *mpi.Comm, l int) (*Grid3D, error) {
	q, err := SideFor(world.Size(), l)
	if err != nil {
		return nil, err
	}
	r := world.Rank()
	k := r / (q * q)
	i := (r % (q * q)) / q
	j := r % q
	g := &Grid3D{World: world, Q: q, L: l, I: i, J: j, K: k}
	// Layer: color by k, order row-major within the layer.
	g.Layer = world.Split(k, i*q+j)
	// Row within layer: color by (k, i), ordered by j.
	g.Row = world.Split(k*q+i, j)
	// Column within layer: color by (k, j) in a disjoint color space.
	g.Col = world.Split(l*q+k*q+j, i)
	// Fiber: color by (i, j), ordered by layer.
	g.Fiber = world.Split(2*l*q+i*q+j, k)
	return g, nil
}

// RankOf returns the world rank at coordinates (i, j, k).
func (g *Grid3D) RankOf(i, j, k int) int { return k*g.Q*g.Q + i*g.Q + j }

// String describes the grid shape, e.g. "4x4x2".
func (g *Grid3D) String() string { return fmt.Sprintf("%dx%dx%d", g.Q, g.Q, g.L) }

// P returns the total number of ranks.
func (g *Grid3D) P() int { return g.Q * g.Q * g.L }
