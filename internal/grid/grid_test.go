package grid

import (
	"testing"

	"repro/internal/mpi"
)

var cm = mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}

func TestSideFor(t *testing.T) {
	cases := []struct {
		p, l, q int
		ok      bool
	}{
		{4, 1, 2, true},
		{16, 1, 4, true},
		{16, 4, 2, true},
		{8, 2, 2, true},
		{32, 2, 4, true},
		{64, 16, 2, true},
		{12, 1, 0, false}, // 12 not a square
		{16, 3, 0, false}, // not divisible
		{0, 1, 0, false},
		{16, 0, 0, false},
	}
	for _, c := range cases {
		q, err := SideFor(c.p, c.l)
		if c.ok && (err != nil || q != c.q) {
			t.Errorf("SideFor(%d,%d)=%d,%v want %d", c.p, c.l, q, err, c.q)
		}
		if !c.ok && err == nil {
			t.Errorf("SideFor(%d,%d) should fail", c.p, c.l)
		}
		if got := ValidP(c.p, c.l); got != c.ok {
			t.Errorf("ValidP(%d,%d)=%v", c.p, c.l, got)
		}
	}
}

func TestGridCoordinates(t *testing.T) {
	// 2 layers of 2x2.
	mpi.Run(8, cm, func(c *mpi.Comm) {
		g, err := New(c, 2)
		if err != nil {
			t.Error(err)
			return
		}
		if g.Q != 2 || g.L != 2 {
			t.Errorf("shape %v", g)
		}
		if g.RankOf(g.I, g.J, g.K) != c.Rank() {
			t.Errorf("rank %d: coords (%d,%d,%d) round trip to %d",
				c.Rank(), g.I, g.J, g.K, g.RankOf(g.I, g.J, g.K))
		}
		if g.P() != 8 {
			t.Errorf("P=%d", g.P())
		}
	})
}

func TestGridCommunicatorSizes(t *testing.T) {
	mpi.Run(16, cm, func(c *mpi.Comm) {
		g, err := New(c, 4) // 2x2x4
		if err != nil {
			t.Error(err)
			return
		}
		if g.Layer.Size() != 4 {
			t.Errorf("layer size=%d, want 4", g.Layer.Size())
		}
		if g.Row.Size() != 2 || g.Col.Size() != 2 {
			t.Errorf("row=%d col=%d, want 2", g.Row.Size(), g.Col.Size())
		}
		if g.Fiber.Size() != 4 {
			t.Errorf("fiber size=%d, want 4", g.Fiber.Size())
		}
		// Sub-communicator ranks match the coordinates.
		if g.Row.Rank() != g.J {
			t.Errorf("row rank=%d, want %d", g.Row.Rank(), g.J)
		}
		if g.Col.Rank() != g.I {
			t.Errorf("col rank=%d, want %d", g.Col.Rank(), g.I)
		}
		if g.Fiber.Rank() != g.K {
			t.Errorf("fiber rank=%d, want %d", g.Fiber.Rank(), g.K)
		}
		if g.Layer.Rank() != g.I*g.Q+g.J {
			t.Errorf("layer rank=%d, want %d", g.Layer.Rank(), g.I*g.Q+g.J)
		}
	})
}

func TestGridCollectivesRouteCorrectly(t *testing.T) {
	// Verify the row communicator really spans (I, :, K): the sum of ranks
	// along a row equals the analytic value.
	mpi.Run(18, cm, func(c *mpi.Comm) {
		g, err := New(c, 2) // 3x3x2
		if err != nil {
			t.Error(err)
			return
		}
		gotRow := g.Row.AllreduceInt64(int64(c.Rank()), mpi.OpSum)
		var wantRow int64
		for j := 0; j < g.Q; j++ {
			wantRow += int64(g.RankOf(g.I, j, g.K))
		}
		if gotRow != wantRow {
			t.Errorf("rank %d: row sum %d, want %d", c.Rank(), gotRow, wantRow)
		}
		gotFiber := g.Fiber.AllreduceInt64(int64(c.Rank()), mpi.OpSum)
		var wantFiber int64
		for k := 0; k < g.L; k++ {
			wantFiber += int64(g.RankOf(g.I, g.J, k))
		}
		if gotFiber != wantFiber {
			t.Errorf("rank %d: fiber sum %d, want %d", c.Rank(), gotFiber, wantFiber)
		}
	})
}

func TestSingleLayerGridIs2D(t *testing.T) {
	mpi.Run(9, cm, func(c *mpi.Comm) {
		g, err := New(c, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if g.Fiber.Size() != 1 {
			t.Errorf("fiber of 2D grid has size %d", g.Fiber.Size())
		}
		if g.Layer.Size() != 9 {
			t.Errorf("layer size=%d", g.Layer.Size())
		}
	})
}

func TestNewRejectsBadShape(t *testing.T) {
	mpi.Run(6, cm, func(c *mpi.Comm) {
		if _, err := New(c, 1); err == nil {
			t.Error("6 ranks accepted as square grid")
		}
	})
}
