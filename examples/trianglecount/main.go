// Triangle counting on a social network via masked SpGEMM (L·U masked by L),
// one of the paper's motivating SpGEMM applications: the wedge matrix L·U is
// far denser than the graph, so the distributed run consumes it batch by
// batch and never materializes it.
package main

import (
	"fmt"
	"log"
	"time"

	spgemm "repro"
)

func main() {
	// A Friendster-like power-law social graph.
	adj := spgemm.RandomGraph(12, 12, true, 99)
	fmt.Printf("social graph: %v\n", adj)

	t0 := time.Now()
	serial, err := spgemm.TriangleCount(adj, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial:      %d triangles in %v\n", serial, time.Since(t0).Round(time.Millisecond))

	cluster := spgemm.NewCluster(16, 4)
	t0 = time.Now()
	dist, err := spgemm.TriangleCount(adj, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: %d triangles in %v (16 ranks, 4 layers)\n",
		dist, time.Since(t0).Round(time.Millisecond))

	if serial != dist {
		log.Fatalf("counts disagree: %d vs %d", serial, dist)
	}
	fmt.Println("counts agree")

	// Clustering coefficient numerator/denominator for context.
	var wedges int64
	for i := int32(0); i < adj.Rows; i++ {
		d := int64(0)
		for j := int32(0); j < adj.Cols; j++ {
			if adj.At(i, j) != 0 {
				d++
			}
		}
		wedges += d * (d - 1) / 2
	}
	if wedges > 0 {
		fmt.Printf("global clustering coefficient: %.4f\n", 3*float64(dist)/float64(wedges))
	}
}
