// Markov clustering of a protein-similarity network with batched distributed
// expansion — the HipMCL scenario of the paper's Fig 3: the matrix square
// never fits at once, so each iteration forms A² in batches, prunes each
// batch, and moves on.
package main

import (
	"fmt"
	"log"
	"sort"

	spgemm "repro"
)

func main() {
	// A synthetic protein family structure: strong intra-family similarity,
	// occasional weak cross-family edges (plus R-MAT background noise).
	a := spgemm.RandomProteinNetwork(9, 10, 7)
	fmt.Printf("protein network: %v\n", a)

	cluster := spgemm.NewCluster(16, 4)
	// A budget tight enough that early expansions run in multiple batches.
	budget := int64(24) * (16*a.NNZ() + spgemm.Flops(a, a)/3)

	res, err := spgemm.MarkovCluster(a, spgemm.MCLConfig{
		Cluster:  cluster,
		MemBytes: budget,
		MaxIter:  30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v after %d iterations: %d clusters\n",
		res.Converged, res.Iterations, res.NumClusters)

	// Cluster size histogram.
	sizes := map[int32]int{}
	for _, c := range res.Labels {
		sizes[c]++
	}
	var ss []int
	for _, n := range sizes {
		ss = append(ss, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ss)))
	fmt.Printf("largest clusters: ")
	for i, n := range ss {
		if i == 10 {
			break
		}
		fmt.Printf("%d ", n)
	}
	fmt.Println()

	singletons := 0
	for _, n := range ss {
		if n == 1 {
			singletons++
		}
	}
	fmt.Printf("%d singletons of %d nodes\n", singletons, a.Rows)
}
