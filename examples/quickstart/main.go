// Quickstart: multiply two sparse matrices on a simulated cluster, first
// unconstrained, then under a memory budget that forces batching — the
// paper's headline capability.
package main

import (
	"fmt"
	"log"

	spgemm "repro"
)

func main() {
	// A protein-similarity-like network: symmetric, weighted, reflexive,
	// 2^10 = 1024 proteins, ~8 edges per protein.
	a := spgemm.RandomProteinNetwork(10, 8, 42)
	fmt.Printf("input: %v\n", a)
	fmt.Printf("squaring needs %d flops and produces %d nonzeros\n",
		spgemm.Flops(a, a), spgemm.NNZEstimate(a, a))

	// A 16-process cluster with 4 communication-avoiding layers.
	cluster := spgemm.NewCluster(16, 4)

	// Unconstrained multiply: single batch.
	c, stats, err := cluster.Multiply(a, a, spgemm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunconstrained: nnz(C)=%d batches=%d peakMem=%.1f MB modeledTime=%.3fs\n",
		c.NNZ(), stats.Batches, float64(stats.PeakMemBytes)/1e6, stats.TotalSeconds)

	// Memory-constrained multiply: give the cluster a budget that holds the
	// inputs comfortably but not the intermediate products. The symbolic
	// step (Alg 3 of the paper) picks the batch count automatically.
	budget := int64(24) * (8*a.NNZ() + spgemm.Flops(a, a)/6)
	c2, stats2, err := cluster.Multiply(a, a, spgemm.Options{MemBytes: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constrained:   nnz(C)=%d batches=%d peakMem=%.1f MB modeledTime=%.3fs\n",
		c2.NNZ(), stats2.Batches, float64(stats2.PeakMemBytes)/1e6, stats2.TotalSeconds)
	if !spgemm.EqualApprox(c, c2, 1e-9) {
		log.Fatal("results differ!")
	}
	fmt.Println("\nresults identical; batching traded extra A-broadcasts for lower peak memory")

	// Step breakdown of the constrained run (the paper's seven steps).
	fmt.Println("\nstep breakdown (modeled comm + measured compute):")
	for _, step := range spgemm.StepNames() {
		s := stats2.Steps[step]
		fmt.Printf("  %-15s comm %.4fs  compute %.4fs  bytes %d\n",
			step, s.CommSeconds, s.ComputeSeconds, s.Bytes)
	}
}
