// Multiply-as-a-service: the MCL, BFS, and triangle-count apps running as
// clients of a spgemmd server. The server holds every operand resident,
// caches each planner decision, and admits concurrent jobs under its memory
// budget — so the iterated apps pay probe cost once and repeat runs replan
// entirely from cache. This example starts the server in-process (httptest);
// pointing Client.Base at a real `spgemmd -addr ...` is the same code.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/apps/bfs"
	"repro/internal/apps/mcl"
	"repro/internal/apps/tricount"
	"repro/internal/genmat"
	"repro/internal/service"
)

func main() {
	// A spgemmd with 16 simulated ranks; unconstrained budget keeps the
	// example fast (see cmd/spgemmd -mem for admission control).
	svc, err := service.New(service.Config{P: 16})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(service.Handler(svc))
	defer srv.Close()
	cl := &service.Client{Base: srv.URL, HTTP: srv.Client()}
	fmt.Printf("spgemmd serving at %s\n\n", srv.URL)

	// A power-law social graph shared by all three apps.
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 8, EdgeFactor: 8, Symmetrize: true, Seed: 42})
	fmt.Printf("graph: %v\n\n", adj)

	// Triangle counting: one L·U product per run.
	t0 := time.Now()
	tris, err := tricount.CountVia(adj, cl.MultiplyMatrices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles:  %d (cold, %v)\n", tris, time.Since(t0).Round(time.Millisecond))

	// Multi-source BFS: one bool-or-and product per depth (on the 0/1
	// pattern of the graph).
	bin := adj.Clone()
	for i := range bin.Val {
		bin.Val[i] = 1
	}
	t0 = time.Now()
	levels, err := bfs.MultiSourceVia(bin, []int32{0, 1, 2, 3}, cl.MultiplyMatrices)
	if err != nil {
		log.Fatal(err)
	}
	ecc := levels.Eccentricity()
	fmt.Printf("bfs:        4 sources, eccentricities %v (%v)\n", ecc, time.Since(t0).Round(time.Millisecond))

	// Markov clustering: one plus-times product per iteration.
	t0 = time.Now()
	res, err := mcl.ClusterVia(adj, mcl.Config{MaxIter: 20}, cl.MultiplyMatrices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mcl:        %d clusters in %d iterations (%v)\n\n", res.NumClusters, len(res.Iters), time.Since(t0).Round(time.Millisecond))

	// The payoff: every product so far probed the planner once. Re-running
	// all three apps hits the plan cache end to end.
	st, _ := cl.Stats()
	fmt.Printf("after cold runs:  %d multiplies, %d probes, %d cache hits\n", st.Multiplies, st.Probes, st.PlanHits)

	t0 = time.Now()
	if _, err := tricount.CountVia(adj, cl.MultiplyMatrices); err != nil {
		log.Fatal(err)
	}
	if _, err := bfs.MultiSourceVia(bin, []int32{0, 1, 2, 3}, cl.MultiplyMatrices); err != nil {
		log.Fatal(err)
	}
	if _, err := mcl.ClusterVia(adj, mcl.Config{MaxIter: 20}, cl.MultiplyMatrices); err != nil {
		log.Fatal(err)
	}
	warm := time.Since(t0).Round(time.Millisecond)

	st2, _ := cl.Stats()
	fmt.Printf("after warm runs:  %d multiplies, %d probes, %d cache hits\n", st2.Multiplies, st2.Probes, st2.PlanHits)
	if st2.Probes != st.Probes {
		log.Fatalf("warm runs performed probe work: %d -> %d", st.Probes, st2.Probes)
	}
	fmt.Printf("warm replay of all three apps: %v, zero new probes — every plan came from cache\n", warm)
}
