// Sequence-overlap detection via AAᵀ on a reads×k-mers matrix — the
// BELLA/PASTIS scenario of the paper's Figs 10–11. The candidate-pair matrix
// is quadratic in the worst case, so the distributed run harvests pairs from
// each batch and discards the matrix.
package main

import (
	"fmt"
	"log"

	spgemm "repro"
)

func main() {
	// 2048 reads over a large k-mer space; consecutive reads overlap with
	// probability 0.35, mimicking genome shotgun coverage.
	reads := spgemm.RandomKmerMatrix(2048, 1<<16, 24, 0.35, 2024)
	fmt.Printf("reads×kmers: %v\n", reads)
	fmt.Printf("AAT flops: %d, nnz(AAT): %d\n",
		spgemm.Flops(reads, spgemm.Transpose(reads)),
		spgemm.NNZEstimate(reads, spgemm.Transpose(reads)))

	const minShared = 3
	cluster := spgemm.NewCluster(16, 4)
	pairs, err := spgemm.OverlapPairs(reads, minShared, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d candidate pairs sharing ≥%d k-mers\n", len(pairs), minShared)

	// Verify against the serial path.
	serial, err := spgemm.OverlapPairs(reads, minShared, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(serial) != len(pairs) {
		log.Fatalf("serial found %d pairs, distributed %d", len(serial), len(pairs))
	}
	fmt.Println("distributed pairs match serial")

	// Show the strongest overlaps.
	best := pairs
	if len(best) > 8 {
		// pairs are sorted by read ids; find the highest-sharing ones.
		top := make([]spgemm.OverlapPair, len(pairs))
		copy(top, pairs)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < len(top); j++ {
				if top[j].Shared > top[i].Shared {
					top[i], top[j] = top[j], top[i]
				}
			}
		}
		best = top[:8]
	}
	fmt.Println("strongest candidate overlaps:")
	for _, p := range best {
		fmt.Printf("  reads %4d ~ %-4d share %d k-mers\n", p.R1, p.R2, p.Shared)
	}
}
