package spgemm_test

import (
	"bytes"
	"testing"

	spgemm "repro"
)

func TestFacadeMultiplyMatchesSerial(t *testing.T) {
	a := spgemm.RandomProteinNetwork(7, 6, 1)
	want := spgemm.MultiplySerial(a, a, nil)
	cluster := spgemm.NewCluster(8, 2)
	got, stats, err := cluster.Multiply(a, a, spgemm.Options{Batches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.EqualApprox(got, want, 1e-9) {
		t.Error("cluster multiply differs from serial")
	}
	if stats.Batches != 2 {
		t.Errorf("batches=%d", stats.Batches)
	}
	if stats.Flops != spgemm.Flops(a, a) {
		t.Errorf("flops=%d, want %d", stats.Flops, spgemm.Flops(a, a))
	}
	if stats.TotalSeconds <= 0 {
		t.Error("no time metered")
	}
	for _, step := range spgemm.StepNames() {
		if _, ok := stats.Steps[step]; !ok {
			t.Errorf("missing step %s", step)
		}
	}
}

func TestFacadeMemoryConstrained(t *testing.T) {
	a := spgemm.RandomProteinNetwork(7, 8, 2)
	cluster := spgemm.NewCluster(4, 1)
	unlimited, su, err := cluster.Multiply(a, a, spgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A budget that admits inputs but squeezes intermediates.
	budget := int64(24) * (8*a.NNZ() + spgemm.Flops(a, a)/4)
	constrained, sc, err := cluster.Multiply(a, a, spgemm.Options{MemBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.EqualApprox(unlimited, constrained, 1e-9) {
		t.Error("memory-constrained result differs")
	}
	if sc.Batches <= su.Batches {
		t.Errorf("expected more batches under constraint: %d vs %d", sc.Batches, su.Batches)
	}
	if sc.PeakMemBytes >= su.PeakMemBytes {
		t.Errorf("batching did not lower peak memory: %d vs %d", sc.PeakMemBytes, su.PeakMemBytes)
	}
}

func TestFacadeBatchedHook(t *testing.T) {
	a := spgemm.RandomGraph(7, 8, true, 3)
	cluster := spgemm.NewCluster(4, 1)
	var batches int
	got, _, err := cluster.MultiplyBatched(a, a, spgemm.Options{Batches: 3},
		func(rank, batch int, cols []int32, piece *spgemm.Matrix) *spgemm.Matrix {
			if batch >= 3 || len(cols) != int(piece.Cols) {
				t.Errorf("hook got batch=%d cols=%d pieceCols=%d", batch, len(cols), piece.Cols)
			}
			batches++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if batches == 0 {
		t.Error("hook never ran")
	}
	if !spgemm.Equal(got, spgemm.MultiplySerial(a, a, nil)) {
		t.Error("hooked multiply changed values")
	}
}

func TestFacadeSemirings(t *testing.T) {
	a := spgemm.RandomGraph(6, 6, false, 4)
	cluster := spgemm.NewCluster(4, 1)
	got, _, err := cluster.Multiply(a, a, spgemm.Options{Semiring: spgemm.BoolOrAnd()})
	if err != nil {
		t.Fatal(err)
	}
	want := spgemm.MultiplySerial(a, a, spgemm.BoolOrAnd())
	if !spgemm.Equal(got, want) {
		t.Error("boolean semiring result differs")
	}
}

func TestFacadeKernelSelection(t *testing.T) {
	a := spgemm.RandomProteinNetwork(6, 6, 5)
	cluster := spgemm.NewCluster(4, 1)
	want := spgemm.MultiplySerial(a, a, nil)
	for _, k := range []spgemm.Kernel{spgemm.KernelHashUnsorted, spgemm.KernelHeap, spgemm.KernelHybrid} {
		got, _, err := cluster.Multiply(a, a, spgemm.Options{Kernel: k, Merger: spgemm.MergerHeap})
		if err != nil {
			t.Fatal(err)
		}
		if !spgemm.EqualApprox(got, want, 1e-9) {
			t.Errorf("kernel %v differs", k)
		}
	}
}

func TestFacadeMachines(t *testing.T) {
	a := spgemm.RandomProteinNetwork(6, 6, 6)
	knl := spgemm.NewCluster(4, 1)
	hsw := knl.OnMachine(spgemm.Haswell())
	_, sk, err := knl.Multiply(a, a, spgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, sh, err := hsw.Multiply(a, a, spgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes on the wire; different modeled comm seconds.
	var bk, bh int64
	var ck, ch float64
	for _, step := range spgemm.StepNames() {
		bk += sk.Steps[step].Bytes
		bh += sh.Steps[step].Bytes
		ck += sk.Steps[step].CommSeconds
		ch += sh.Steps[step].CommSeconds
	}
	if bk != bh {
		t.Errorf("byte counts differ across machines: %d vs %d", bk, bh)
	}
	if !(ch < ck) {
		t.Errorf("Haswell comm (%v) not faster than KNL (%v)", ch, ck)
	}
}

func TestFacadeMatrixHelpers(t *testing.T) {
	m, err := spgemm.FromTriples(3, 3, []spgemm.Triple{{Row: 0, Col: 1, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tr := spgemm.Transpose(m)
	if tr.At(1, 0) != 2 {
		t.Error("transpose wrong")
	}
	id := spgemm.Identity(3)
	if got := spgemm.MultiplySerial(m, id, nil); !spgemm.Equal(got, m) {
		t.Error("M·I ≠ M")
	}
	var buf bytes.Buffer
	if err := spgemm.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := spgemm.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(m, back) {
		t.Error("MatrixMarket round trip failed")
	}
	if spgemm.NNZEstimate(m, id) != m.NNZ() {
		t.Error("NNZEstimate wrong")
	}
}

func TestFacadeMarkovCluster(t *testing.T) {
	// Two cliques bridged weakly.
	var ts []spgemm.Triple
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i != j {
				ts = append(ts, spgemm.Triple{Row: i, Col: j, Val: 1})
				ts = append(ts, spgemm.Triple{Row: 4 + i, Col: 4 + j, Val: 1})
			}
		}
	}
	ts = append(ts, spgemm.Triple{Row: 0, Col: 4, Val: 0.05}, spgemm.Triple{Row: 4, Col: 0, Val: 0.05})
	a, _ := spgemm.FromTriples(8, 8, ts)
	res, err := spgemm.MarkovCluster(a, spgemm.MCLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Errorf("clusters=%d, want 2", res.NumClusters)
	}
	// Distributed expansion agrees.
	resD, err := spgemm.MarkovCluster(a, spgemm.MCLConfig{Cluster: spgemm.NewCluster(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resD.NumClusters != 2 {
		t.Errorf("distributed clusters=%d, want 2", resD.NumClusters)
	}
}

func TestFacadeTriangleCount(t *testing.T) {
	// K5 has 10 triangles.
	var ts []spgemm.Triple
	for i := int32(0); i < 5; i++ {
		for j := int32(0); j < 5; j++ {
			if i != j {
				ts = append(ts, spgemm.Triple{Row: i, Col: j, Val: 1})
			}
		}
	}
	adj, _ := spgemm.FromTriples(5, 5, ts)
	n, err := spgemm.TriangleCount(adj, nil)
	if err != nil || n != 10 {
		t.Errorf("serial: %d triangles (err %v), want 10", n, err)
	}
	nd, err := spgemm.TriangleCount(adj, spgemm.NewCluster(4, 1))
	if err != nil || nd != 10 {
		t.Errorf("distributed: %d triangles (err %v), want 10", nd, err)
	}
}

func TestFacadeOverlapPairs(t *testing.T) {
	a := spgemm.RandomKmerMatrix(40, 500, 8, 0.5, 7)
	serial, err := spgemm.OverlapPairs(a, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := spgemm.OverlapPairs(a, 2, spgemm.NewCluster(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(dist) {
		t.Fatalf("serial %d pairs, distributed %d", len(serial), len(dist))
	}
	for i := range serial {
		if serial[i] != dist[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestClusterAccessors(t *testing.T) {
	c := spgemm.NewCluster(16, 4)
	if c.Procs() != 16 || c.Layers() != 4 {
		t.Error("accessors wrong")
	}
	if off := c.RowOffsetOf(64, 0); off != 0 {
		t.Errorf("rank 0 offset %d", off)
	}
	// Last rank of the first layer's last row block.
	if off := c.RowOffsetOf(64, 3); off != 32 {
		t.Errorf("rank 3 offset %d, want 32", off)
	}
}

func TestFacadeJaccardPairs(t *testing.T) {
	a := spgemm.RandomKmerMatrix(30, 200, 6, 0.5, 8)
	serial, err := spgemm.JaccardPairs(a, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := spgemm.JaccardPairs(a, 0.1, spgemm.NewCluster(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(dist) {
		t.Fatalf("serial %d pairs, distributed %d", len(serial), len(dist))
	}
	for i := range serial {
		if serial[i].R1 != dist[i].R1 || serial[i].R2 != dist[i].R2 {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestFacadeHeavyConnectivityMatching(t *testing.T) {
	a := spgemm.RandomKmerMatrix(24, 48, 4, 0.4, 9)
	serial, err := spgemm.HeavyConnectivityMatching(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	dist, err := spgemm.HeavyConnectivityMatching(a, spgemm.NewCluster(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Matched != dist.Matched || serial.Weight != dist.Weight {
		t.Errorf("serial %d/%v vs distributed %d/%v",
			serial.Matched, serial.Weight, dist.Matched, dist.Weight)
	}
}

func TestFacadeMultiSourceBFS(t *testing.T) {
	// Path graph 0-1-2-3.
	var ts []spgemm.Triple
	for i := int32(0); i < 3; i++ {
		ts = append(ts, spgemm.Triple{Row: i + 1, Col: i, Val: 1},
			spgemm.Triple{Row: i, Col: i + 1, Val: 1})
	}
	adj, _ := spgemm.FromTriples(4, 4, ts)
	serial, err := spgemm.MultiSourceBFS(adj, []int32{0, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial.At(3, 0) != 3 || serial.At(0, 1) != 3 {
		t.Errorf("levels wrong: %d %d", serial.At(3, 0), serial.At(0, 1))
	}
	dist, err := spgemm.MultiSourceBFS(adj, []int32{0, 3}, spgemm.NewCluster(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Level {
		if serial.Level[i] != dist.Level[i] {
			t.Fatalf("level[%d] differs", i)
		}
	}
}

func TestFacadePipelined(t *testing.T) {
	a := spgemm.RandomProteinNetwork(7, 6, 2)
	cluster := spgemm.NewCluster(16, 4)
	staged, sStats, err := cluster.Multiply(a, a, spgemm.Options{Batches: 2, MeasureSymbolic: true})
	if err != nil {
		t.Fatal(err)
	}
	piped, pStats, err := cluster.Multiply(a, a, spgemm.Options{Batches: 2, MeasureSymbolic: true, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pipelining reorders only broadcast posting, never the arithmetic, so
	// the outputs are bit-identical (Equal, not EqualApprox).
	if !spgemm.Equal(staged, piped) {
		t.Error("pipelined result differs from staged")
	}
	if sStats.HiddenCommSeconds != 0 {
		t.Errorf("staged run hid comm: %v", sStats.HiddenCommSeconds)
	}
	if pStats.HiddenCommSeconds <= 0 {
		t.Error("pipelined run hid no comm time")
	}
	var perStep float64
	for _, step := range spgemm.StepNames() {
		if pStats.Steps[step].Bytes != sStats.Steps[step].Bytes {
			t.Errorf("%s: bytes moved changed under pipelining", step)
		}
		if h := sStats.Steps[step].HiddenCommSeconds; h != 0 {
			t.Errorf("%s: staged run reports per-step hidden comm %v", step, h)
		}
		perStep += pStats.Steps[step].HiddenCommSeconds
	}
	// The per-step hidden breakdown must add up to the total (the symbolic
	// hidden share is folded into the Symbolic step).
	if diff := perStep - pStats.HiddenCommSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("per-step hidden comm sums to %v, total reports %v", perStep, pStats.HiddenCommSeconds)
	}
	// The fiber exchange overlaps the own-layer Merge-Layer share, so on a
	// multi-layer grid its hidden share must be nonzero too.
	if h := pStats.Steps["AllToAll-Fiber"].HiddenCommSeconds; h <= 0 {
		t.Errorf("pipelined run hid no AllToAll-Fiber time (hidden %v)", h)
	}
}

// TestFacadeAutoTune: Options.AutoTune must pick a configuration by itself
// (possibly changing the cluster's layer count), produce the exact same
// product values, report the executed knobs, and decide deterministically.
func TestFacadeAutoTune(t *testing.T) {
	a := spgemm.RandomProteinNetwork(7, 6, 1)
	want := spgemm.MultiplySerial(a, a, nil)
	cluster := spgemm.NewCluster(16, 1)

	got, stats, err := cluster.Multiply(a, a, spgemm.Options{AutoTune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.EqualApprox(got, want, 1e-9) {
		t.Error("autotuned multiply differs from serial")
	}
	if stats.Layers < 1 || stats.Batches < 1 {
		t.Errorf("unreported configuration: layers=%d batches=%d", stats.Layers, stats.Batches)
	}
	if stats.Batches != 1 {
		t.Errorf("unconstrained autotune picked b=%d, want 1", stats.Batches)
	}

	_, stats2, err := cluster.Multiply(a, a, spgemm.Options{AutoTune: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Layers != stats2.Layers || stats.Batches != stats2.Batches ||
		stats.Format != stats2.Format || stats.Pipeline != stats2.Pipeline {
		t.Errorf("autotune decision not deterministic: %d/%d/%v/%v vs %d/%d/%v/%v",
			stats.Layers, stats.Batches, stats.Format, stats.Pipeline,
			stats2.Layers, stats2.Batches, stats2.Format, stats2.Pipeline)
	}

	// Under a memory budget the induced batch count must be respected and
	// the run stay correct.
	budget := int64(24) * 8 * a.NNZ()
	gotB, statsB, err := cluster.Multiply(a, a, spgemm.Options{AutoTune: true, MemBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.EqualApprox(gotB, want, 1e-9) {
		t.Error("budgeted autotuned multiply differs from serial")
	}
	if statsB.Batches < 1 {
		t.Errorf("budgeted autotune reported batches=%d", statsB.Batches)
	}
}

func TestFacadeMultiplyDense(t *testing.T) {
	// Unweighted (integer-valued) sparse operand and small-integer panel:
	// every partial sum is exact in float64, so bit-identity is assertable.
	a := spgemm.RandomGraph(6, 6, true, 31)
	b := spgemm.NewDenseMatrix(a.Cols, 6)
	for i := int32(0); i < b.Rows; i++ {
		for j := int32(0); j < b.Cols; j++ {
			b.Set(i, j, float64((int(i)*7+int(j)*3)%9+1))
		}
	}
	want := spgemm.MultiplyDenseSerial(a, b)
	cluster := spgemm.NewCluster(8, 2)

	for _, tc := range []struct {
		algo spgemm.Algo
		c    int
	}{
		{spgemm.AlgoColA, 2},
		{spgemm.AlgoInnerABC, 2},
		{spgemm.AlgoColA, 1},
	} {
		got, stats, err := cluster.MultiplyDense(a, b, spgemm.Options{
			Algo: tc.algo, Replication: tc.c, Batches: 2,
		})
		if err != nil {
			t.Fatalf("%v c=%d: %v", tc.algo, tc.c, err)
		}
		if !spgemm.DenseEqual(got, want) {
			t.Errorf("%v c=%d: result differs from serial reference", tc.algo, tc.c)
		}
		if stats.Algo != tc.algo || stats.Replication != tc.c || stats.Batches != 2 {
			t.Errorf("%v c=%d: stats report algo=%v c=%d b=%d", tc.algo, tc.c,
				stats.Algo, stats.Replication, stats.Batches)
		}
		if stats.Flops != a.NNZ()*int64(b.Cols) {
			t.Errorf("%v c=%d: flops=%d, want %d", tc.algo, tc.c, stats.Flops, a.NNZ()*int64(b.Cols))
		}
	}

	// The SUMMA arm densifies through the sparse pipeline.
	got, stats, err := cluster.MultiplyDense(a, b, spgemm.Options{Algo: spgemm.AlgoSUMMA})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.DenseEqual(got, want) {
		t.Error("SUMMA arm differs from serial reference")
	}
	if stats.Algo != spgemm.AlgoSUMMA || stats.Replication != 0 {
		t.Errorf("SUMMA stats report algo=%v c=%d", stats.Algo, stats.Replication)
	}

	// AutoTune decides the family; the result must not change.
	got, stats, err = cluster.MultiplyDense(a, b, spgemm.Options{AutoTune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.DenseEqual(got, want) {
		t.Error("autotuned dense multiply differs from serial reference")
	}
	if stats.Algo != spgemm.AlgoSUMMA && stats.Replication < 1 {
		t.Errorf("autotune picked %v with replication %d", stats.Algo, stats.Replication)
	}
}
