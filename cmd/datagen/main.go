// Command datagen writes synthetic test matrices (the scaled analogues of
// the paper's Table V datasets) as MatrixMarket files.
//
// Usage:
//
//	datagen -kind protein -scale 10 -ef 8 -out prot.mtx
//	datagen -kind rmat -scale 12 -ef 16 -out social.mtx
//	datagen -kind kmer -reads 4096 -kmers 65536 -out reads.mtx
//	datagen -kind er -n 10000 -ef 8 -out er.mtx
//	datagen -kind hyper -reads 64 -kmers 4096 -out hyper.mtx  # ~2 nnz/column
//	datagen -kind tallskinny -n 4096 -d 16 -out panel.mtx     # SpMM feature panel
package main

import (
	"flag"
	"fmt"
	"os"

	spgemm "repro"
	"repro/internal/genmat"
)

func main() {
	var (
		kind  = flag.String("kind", "protein", "matrix kind: protein | rmat | er | kmer | hyper | tallskinny")
		scale = flag.Int("scale", 10, "log2 of the matrix side (protein, rmat)")
		n     = flag.Int("n", 1024, "matrix side (er) or rows (tallskinny)")
		d     = flag.Int("d", 8, "panel width (tallskinny)")
		fill  = flag.Float64("fill", 0.9, "fraction of panel entries present (tallskinny)")
		ef    = flag.Int("ef", 8, "edge factor / average degree")
		reads = flag.Int("reads", 1024, "rows of the kmer matrix")
		kmers = flag.Int("kmers", 16384, "columns of the kmer matrix")
		kpr   = flag.Int("kmers-per-read", 24, "k-mer occurrences per read")
		ovl   = flag.Float64("overlap", 0.3, "read overlap probability (kmer)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var m *spgemm.Matrix
	switch *kind {
	case "protein":
		m = genmat.ProteinSimilarity(*scale, *ef, *seed)
	case "rmat":
		m = genmat.RMAT(genmat.RMATConfig{Scale: *scale, EdgeFactor: *ef, Symmetrize: true, Seed: *seed})
	case "er":
		m = genmat.ER(int32(*n), *ef, *seed)
	case "kmer":
		m = genmat.Kmer(genmat.KmerConfig{
			Reads: int32(*reads), Kmers: int32(*kmers),
			KmersPerRead: *kpr, Overlap: *ovl, Seed: *seed,
		})
	case "hyper":
		// Hypersparse preset: reads×kmers shape with ~2 nnz per column
		// (Rice-kmers-like), the regime the DCSC storage format targets.
		m = genmat.Hypersparse(int32(*reads), int32(*kmers), 2, *seed)
	case "tallskinny":
		// Tall-skinny feature panel: the dense operand of the SpMM path,
		// stored sparsely for interchange (densify with DenseFromCSC).
		m = genmat.TallSkinny(int32(*n), int32(*d), *fill, *seed)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := spgemm.WriteMatrixMarket(w, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %s matrix: %v\n", *kind, m)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
