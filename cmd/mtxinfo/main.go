// Command mtxinfo prints Table V style statistics for a MatrixMarket file:
// shape, nonzeros, the nonzeros and flops of its self-product (A·A or A·Aᵀ),
// compression factor, and the batch counts a given memory budget would need
// on a given grid (the symbolic decision, Eq 2 and Alg 3).
//
// With -grid it additionally reports per-block hypersparsity: how the matrix
// distributes onto a q×q×l process grid, the non-empty columns and
// nnz/column of the local blocks, their CSC vs DCSC footprints, and which
// storage format the auto heuristic would pick per block.
//
// With -plan it runs the analytical autotuner for the self-product: the
// ranked configurations (layers × batches × format × pipeline × overlap
// channels) with their predicted per-step costs on the chosen machine model,
// under the -mem budget, plus the kernel/merger selection per candidate —
// which local-multiply kernel and merge strategy the cost table picks for
// the candidate's column regimes, and the priced sweep it beat.
//
// With -plan -trace out.json it additionally renders the winning candidate's
// predicted schedule as a Chrome trace-event timeline: one comm, compute,
// and hidden span per paper step, so the plan the autotuner argues from can
// be eyeballed in chrome://tracing before anything runs.
//
// Usage:
//
//	mtxinfo graph.mtx
//	mtxinfo -mem 1e9 -procs 64 -layers 4 graph.mtx
//	mtxinfo -grid 2x2x16 reads.mtx
//	mtxinfo -plan -machine knl -p 1024 -mem 4GB graph.mtx
//	mtxinfo -plan -trace plan.json graph.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/distmat"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/spmat"
)

func main() {
	var (
		memStr  = flag.String("mem", "", "aggregate memory budget in bytes, with optional suffix: 4GB, 512MB, 1e9 (empty = unconstrained)")
		procs   = flag.Int("procs", 64, "process count for the batch estimate")
		pFlag   = flag.Int("p", 0, "process count for -plan (0 = use -procs)")
		layers  = flag.Int("layers", 4, "layer count for the batch estimate")
		gridSh  = flag.String("grid", "", "per-block hypersparsity report for a RxCxL process grid, e.g. 2x2x16 (R must equal C)")
		plan    = flag.Bool("plan", false, "run the analytical autotuner for the self-product and print the ranked configurations with per-step predicted costs")
		machine = flag.String("machine", "knl", "with -plan: machine model (knl | haswell | knl-ht | local)")
		trace   = flag.String("trace", "", "with -plan: write the winning candidate's predicted schedule as Chrome trace-event JSON to this path")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mtxinfo [-mem B -procs P -layers L] [-plan -machine M -p P] file.mtx")
		os.Exit(2)
	}
	mem, err := parseBytes(*memStr)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a, err := spmat.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	st := genmat.Collect(flag.Arg(0), a)
	fmt.Println(genmat.StatsHeader())
	fmt.Println(st.String())
	fmt.Printf("\nproduct studied: %s\n", st.Squared)
	fmt.Printf("output growth nnz(C)/nnz(A): %.2f\n", float64(st.NnzC)/float64(st.NnzA))
	fmt.Printf("input memory (r=24 B/nnz):   %.1f MB\n", float64(st.NnzA*24)/1e6)
	fmt.Printf("output memory:               %.1f MB\n", float64(st.NnzC*24)/1e6)
	fmt.Printf("worst-case intermediates:    %.1f MB (flops bound, Eq 1)\n", float64(st.Flops*24)/1e6)

	// The pair operand of the studied self-product: A for square inputs,
	// Aᵀ for rectangular ones (Table V's convention), shared by every
	// report below.
	b := a
	if a.Rows != a.Cols {
		b = spmat.Transpose(a)
	}

	if mem > 0 {
		memC := 24 * localmm.Flops(a, b)
		lower := core.BatchLowerBound(memC, a.NNZ(), b.NNZ(), mem, 24)
		fmt.Printf("\nwith M = %.2e bytes on a %d-process, %d-layer grid:\n", float64(mem), *procs, *layers)
		fmt.Printf("  batch lower bound (Eq 2, perfectly balanced): %d\n", lower)
		if lower > 1<<20 {
			fmt.Println("  (inputs alone exceed the budget)")
		}
	}

	if *plan {
		m, err := costmodel.ByName(*machine)
		if err != nil {
			fatal(err)
		}
		p := *pFlag
		if p <= 0 {
			p = *procs
		}
		pl, err := planner.New(a, b, planner.Input{
			P: p, MemBytes: mem, Machine: m, Symbolic: mem > 0,
			Channels: []int{1, 2},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(pl.Report())
		if *trace != "" {
			if err := writePlanTrace(*trace, pl); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote predicted-schedule trace to %s (open in chrome://tracing)\n", *trace)
		}
	} else if *trace != "" {
		fatal(fmt.Errorf("-trace needs -plan (it renders the planner's predicted schedule)"))
	}

	if *gridSh != "" {
		q, l, err := parseGrid(*gridSh)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nper-block hypersparsity on the %dx%dx%d grid (p = %d):\n", q, q, l, q*q*l)
		reportBlocks("A-style blocks (Ã of A)", aBlocks(a, q, l))
		reportBlocks("B-style blocks (B̃ of the pair operand)", bBlocks(b, q, l))
	}
}

// writePlanTrace synthesizes a one-rank timeline from the winning
// candidate's per-step predictions: for each paper step, an exposed comm
// span (the predicted critical-path communication), a compute span (the
// step's work share of one rank at the plan's work rate), and a hidden span
// for whatever the overlap model predicts the pipelined schedule hides. The
// result is a *predicted* schedule — compare it against a measured
// `spgemm-bench -trace` timeline of the same shape.
func writePlanTrace(path string, pl *planner.Plan) error {
	best := pl.Best()
	if best == nil {
		return fmt.Errorf("no feasible plan to trace")
	}
	rec := obs.NewRecorder(1)
	r := rec.Rank(0)
	p := float64(pl.In.P)
	for _, st := range best.Steps {
		if st.CommSeconds > 0 {
			r.Record(st.Step, obs.KindComm, st.CommSeconds, 0, 0, 0)
		}
		if st.WorkUnits > 0 {
			r.Record(st.Step, obs.KindCompute,
				float64(st.WorkUnits)/p*pl.In.SecPerWork, 0, 0, st.WorkUnits)
		}
		if st.HiddenSeconds > 0 {
			r.Record(st.Step, obs.KindHidden, st.HiddenSeconds, 0, 0, 0)
		}
	}
	return rec.WriteTraceFile(path)
}

// parseGrid parses "RxCxL" with R == C, rejecting trailing garbage.
func parseGrid(s string) (q, l int, err error) {
	var r, c int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &r, &c, &l); err != nil ||
		fmt.Sprintf("%dx%dx%d", r, c, l) != s {
		return 0, 0, fmt.Errorf("bad -grid %q (want RxCxL, e.g. 2x2x16)", s)
	}
	if r != c || r < 1 || l < 1 {
		return 0, 0, fmt.Errorf("bad -grid %q: the paper's grids are square per layer (R = C ≥ 1, L ≥ 1)", s)
	}
	return r, l, nil
}

// allBlocks extracts every (i, j, k) local block of one distribution.
func allBlocks(q, l int, local func(i, j, k int) *spmat.CSC) []*spmat.CSC {
	out := make([]*spmat.CSC, 0, q*q*l)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < l; k++ {
				out = append(out, local(i, j, k))
			}
		}
	}
	return out
}

// aBlocks extracts every local block of the A-style distribution.
func aBlocks(a *spmat.CSC, q, l int) []*spmat.CSC {
	d := distmat.NewADist(a.Rows, a.Cols, q, l)
	return allBlocks(q, l, func(i, j, k int) *spmat.CSC { return d.Local(a, i, j, k) })
}

// bBlocks extracts every local block of the B-style distribution.
func bBlocks(b *spmat.CSC, q, l int) []*spmat.CSC {
	d := distmat.NewBDist(b.Rows, b.Cols, q, l)
	return allBlocks(q, l, func(i, j, k int) *spmat.CSC { return d.Local(b, i, j, k) })
}

// reportBlocks prints the hypersparsity summary of one distribution's
// blocks: occupancy, nnz per occupied column, both storage footprints, and
// the auto heuristic's verdict.
func reportBlocks(title string, blocks []*spmat.CSC) {
	var (
		hyper                  int
		totNNZ, totNE, totCols int64
		cscBytes, dcscBytes    int64
		minOcc, maxOcc         = 1.0, 0.0
	)
	for _, blk := range blocks {
		ne := blk.NonEmptyCols()
		totNNZ += blk.NNZ()
		totNE += ne
		totCols += int64(blk.Cols)
		cscBytes += blk.MemBytes()
		dcscBytes += blk.ToDCSC().MemBytes()
		if spmat.Hypersparse(ne, blk.Cols) {
			hyper++
		}
		if blk.Cols > 0 {
			occ := float64(ne) / float64(blk.Cols)
			if occ < minOcc {
				minOcc = occ
			}
			if occ > maxOcc {
				maxOcc = occ
			}
		}
	}
	nnzPerCol := 0.0
	if totNE > 0 {
		nnzPerCol = float64(totNNZ) / float64(totNE)
	}
	fmt.Printf("  %s:\n", title)
	fmt.Printf("    blocks:                 %d (%d hypersparse: auto picks dcsc, %d stay csc)\n",
		len(blocks), hyper, len(blocks)-hyper)
	fmt.Printf("    column occupancy:       %.1f%% mean (%.1f%%–%.1f%% per block)\n",
		100*float64(totNE)/float64(max64(totCols, 1)), 100*minOcc, 100*maxOcc)
	fmt.Printf("    nnz / occupied column:  %.2f\n", nnzPerCol)
	fmt.Printf("    footprint (all blocks): csc %.1f KB, dcsc %.1f KB (%.2fx)\n",
		float64(cscBytes)/1e3, float64(dcscBytes)/1e3, float64(cscBytes)/float64(max64(dcscBytes, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// parseBytes parses a byte count with an optional decimal suffix (KB, MB,
// GB, TB, or their KiB/MiB/… binary forms, case-insensitive); a bare number
// may use any float syntax ("1e9"). Empty means zero.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	mult := 1.0
	for _, suf := range []struct {
		tag string
		f   float64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12}, {"B", 1},
	} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.f
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suf.tag))
			break
		}
	}
	v, err := strconv.ParseFloat(upper, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -mem %q (want e.g. 4GB, 512MB, 1e9)", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("bad -mem %q: negative", s)
	}
	return int64(v * mult), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtxinfo:", err)
	os.Exit(1)
}
