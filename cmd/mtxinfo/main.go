// Command mtxinfo prints Table V style statistics for a MatrixMarket file:
// shape, nonzeros, the nonzeros and flops of its self-product (A·A or A·Aᵀ),
// compression factor, and the batch counts a given memory budget would need
// on a given grid (the symbolic decision, Eq 2 and Alg 3).
//
// Usage:
//
//	mtxinfo graph.mtx
//	mtxinfo -mem 1e9 -procs 64 -layers 4 graph.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/spmat"
)

func main() {
	var (
		mem    = flag.Float64("mem", 0, "aggregate memory budget in bytes (0 = skip batch estimate)")
		procs  = flag.Int("procs", 64, "process count for the batch estimate")
		layers = flag.Int("layers", 4, "layer count for the batch estimate")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mtxinfo [-mem B -procs P -layers L] file.mtx")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a, err := spmat.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	st := genmat.Collect(flag.Arg(0), a)
	fmt.Println(genmat.StatsHeader())
	fmt.Println(st.String())
	fmt.Printf("\nproduct studied: %s\n", st.Squared)
	fmt.Printf("output growth nnz(C)/nnz(A): %.2f\n", float64(st.NnzC)/float64(st.NnzA))
	fmt.Printf("input memory (r=24 B/nnz):   %.1f MB\n", float64(st.NnzA*24)/1e6)
	fmt.Printf("output memory:               %.1f MB\n", float64(st.NnzC*24)/1e6)
	fmt.Printf("worst-case intermediates:    %.1f MB (flops bound, Eq 1)\n", float64(st.Flops*24)/1e6)

	if *mem > 0 {
		b := a
		if a.Rows != a.Cols {
			b = spmat.Transpose(a)
		}
		memC := 24 * localmm.Flops(a, b)
		lower := core.BatchLowerBound(memC, a.NNZ(), b.NNZ(), int64(*mem), 24)
		fmt.Printf("\nwith M = %.2e bytes on a %d-process, %d-layer grid:\n", *mem, *procs, *layers)
		fmt.Printf("  batch lower bound (Eq 2, perfectly balanced): %d\n", lower)
		if lower > 1<<20 {
			fmt.Println("  (inputs alone exceed the budget)")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtxinfo:", err)
	os.Exit(1)
}
