// Command spgemm-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated cluster.
//
// Usage:
//
//	spgemm-bench -exp list                 # show every experiment
//	spgemm-bench -exp fig6                 # regenerate one figure
//	spgemm-bench -exp all -scale small     # the full evaluation
//	spgemm-bench -exp fig13 -machine haswell
//	spgemm-bench -exp fig6 -threads 8         # multithreaded local kernels
//	spgemm-bench -exp fig6 -pipeline          # overlap broadcasts with compute
//
// Scales: tiny (seconds), small (default), large (minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/costmodel"
	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "list", "experiment id (fig3..fig15, table2..table7), 'all', or 'list'")
		scale    = flag.String("scale", "small", "workload scale: tiny | small | large")
		machine  = flag.String("machine", "knl", "machine model: knl | haswell | knl-ht | local")
		threads  = flag.Int("threads", 1, "worker goroutines per rank in local multiply/merge kernels (1 = serial, the published figure shapes)")
		pipeline = flag.Bool("pipeline", false, "overlap stage broadcasts with local compute (prefetch stage s+1 while stage s multiplies; off = the paper's staged schedule)")
		verbose  = flag.Bool("v", false, "verbose output")
	)
	flag.Parse()

	if *exp == "list" {
		fmt.Println("available experiments:")
		for _, e := range experiments.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	m, err := costmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	opts := experiments.RunOpts{Scale: sc, Machine: m, Threads: *threads, Pipeline: *pipeline, Verbose: *verbose}

	var list []*experiments.Experiment
	if *exp == "all" {
		list = experiments.List()
	} else {
		e, err := experiments.Get(*exp)
		if err != nil {
			fatal(err)
		}
		list = []*experiments.Experiment{e}
	}

	for _, e := range list {
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
	os.Exit(1)
}
