// Command spgemm-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated cluster, and runs the deterministic
// performance-regression gate CI uses.
//
// Usage:
//
//	spgemm-bench -exp list                 # show every experiment
//	spgemm-bench -exp fig6                 # regenerate one figure
//	spgemm-bench -exp all -scale small     # the full evaluation
//	spgemm-bench -exp fig13 -machine haswell
//	spgemm-bench -exp fig6 -threads 8         # multithreaded local kernels
//	spgemm-bench -exp fig6 -pipeline          # fully-overlapped schedule
//	spgemm-bench -exp pipeline                # staged-vs-overlapped ablation
//	spgemm-bench -exp fig6 -format dcsc       # force doubly-compressed blocks
//	spgemm-bench -exp hypersparse             # CSC-vs-DCSC storage ablation
//	spgemm-bench -exp fig6 -sparsecomm auto   # column-subset A-broadcasts
//	spgemm-bench -exp sparsecomm              # full-vs-subset broadcast ablation
//	spgemm-bench -exp spmm                    # sparse×dense: SUMMA vs 1.5D
//	spgemm-bench -exp spmm -algo cola -replication 2   # restrict the sweep
//	spgemm-bench -exp fig6 -kernel heap       # pin the local-multiply kernel
//	spgemm-bench -exp fig6 -kernel auto -merger auto   # per-block table picks
//	spgemm-bench -exp fig6 -pipeline -channels 2       # k outstanding overlaps
//	spgemm-bench -exp kernelsel               # kernel/merger pick vs option sweep
//
//	spgemm-bench -gate -json BENCH_pr3.json                            # emit the stats dump
//	spgemm-bench -gate -json BENCH_pr3.json -baseline BENCH_baseline.json
//	    # additionally compare: exit 1 if modeled critical-path seconds
//	    # regress more than -tol (default 5%) vs the checked-in baseline
//
//	spgemm-bench -autotune                 # plan each gate shape, print the
//	    # ranked configurations + why, run the pick, show predicted-vs-measured
//	spgemm-bench -plangate                 # planner-vs-oracle CI gate: exit 1
//	    # when any pick is >10% (-tol) above the exhaustive sweep's best
//	spgemm-bench -kernelgate               # kernel/merger-selection CI gate:
//	    # exit 1 when the planner's kernel or merger pick prices >10% (-tol)
//	    # above the exhaustive option sweep on measured aggregates, or when a
//	    # pick-vs-defaults differential run is not bit-identical
//
//	spgemm-bench -server http://127.0.0.1:8347 -exp service -scale tiny
//	    # spgemmd-client mode: drive a running spgemmd daemon with the
//	    # service soak duty cycle instead of simulating in-process
//
//	spgemm-bench -trace out.json                              # re-run one
//	    # pinned gate shape with span recording on and write the per-rank
//	    # Chrome/Perfetto trace (load in chrome://tracing or ui.perfetto.dev)
//	spgemm-bench -trace out.json -traceshape fig6-friendster-staged
//
// Scales: tiny (seconds), small (default), large (minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/service"
	"repro/internal/spmat"
)

func main() {
	var (
		exp      = flag.String("exp", "list", "experiment id (fig3..fig15, table2..table7, pipeline), 'all', or 'list'")
		scale    = flag.String("scale", "small", "workload scale: tiny | small | large")
		machine  = flag.String("machine", "knl", "machine model: knl | haswell | knl-ht | local")
		threads  = flag.Int("threads", 1, "worker goroutines per rank in local multiply/merge kernels (1 = serial, the published figure shapes)")
		pipeline = flag.Bool("pipeline", false, "fully-overlapped schedule: prefetch stage broadcasts within and across batches and hide the fiber AllToAll behind Merge-Layer (off = the paper's staged schedule)")
		format   = flag.String("format", "auto", "in-memory block storage: csc | dcsc | auto (auto compresses a block to DCSC when fewer than half its columns are occupied)")
		sparse   = flag.String("sparsecomm", "off", "column-subset A-broadcast: off | auto | on (off reproduces the published figure shapes byte-identically; auto picks subsets per stage when the α–β model prices them cheaper)")
		kernel   = flag.String("kernel", "", "local-multiply kernel: hash | sorted-hash | heap | hybrid | auto (empty = unsorted hash, the paper's default; auto consults the kernel cost table per block; output values are identical for every choice)")
		merger   = flag.String("merger", "", "layer/fiber merge strategy: hash | heap | auto (empty = hash merge, the default; auto consults the kernel cost table)")
		channels = flag.Int("channels", 0, "outstanding overlap channels the pipelined schedule may hide behind (0 = 1; only meaningful with -pipeline)")
		algo     = flag.String("algo", "", "restrict the spmm experiment's sparse×dense sweep to one algorithm family: summa | cola | innerabc (empty sweeps all three)")
		replic   = flag.Int("replication", 0, "restrict the spmm experiment's 1.5D replication sweep to one factor c (c² must divide p; 0 sweeps every valid c)")
		gate     = flag.Bool("gate", false, "run the deterministic perf-regression gate on pinned fig-6/8 shapes instead of an experiment")
		autotune = flag.Bool("autotune", false, "plan the gate shapes with the analytical autotuner, print each ranked plan, run the chosen configuration, and show the predicted-vs-measured per-step breakdown")
		plangate = flag.Bool("plangate", false, "planner-vs-oracle gate: exit 1 when the planner's pick is more than -tol above the exhaustive sweep's best modeled critical path")
		kerngate = flag.Bool("kernelgate", false, "kernel/merger-selection gate: exit 1 when the planner's kernel or merger pick prices more than -tol above the exhaustive option sweep on measured aggregates, or a differential run is not bit-identical")
		server   = flag.String("server", "", "spgemmd-client mode: base URL of a running spgemmd (e.g. http://127.0.0.1:8347); drives the remote daemon with the service soak instead of running in-process")
		traceOut = flag.String("trace", "", "re-run one pinned gate shape with span recording on and write its per-rank Chrome trace-event JSON to this path (loadable in chrome://tracing / Perfetto)")
		trShape  = flag.String("traceshape", "fig6-friendster-overlapped", "with -trace: which pinned gate shape to record")
		jsonPath = flag.String("json", "", "with -gate: write the stats dump (BENCH_pr3.json) to this path")
		baseline = flag.String("baseline", "", "with -gate: compare against this checked-in baseline and exit nonzero on regression")
		tol      = flag.Float64("tol", 0, "relative tolerance: modeled critical-path regression for -gate -baseline (default 5%), planner-vs-oracle gap for -plangate (default 10%); an explicit 0 means strict")
		verbose  = flag.Bool("v", false, "verbose output")
	)
	flag.Parse()
	// Distinguish an explicit `-tol 0` (strict) from the flag being absent
	// (per-gate default); the two gates default differently.
	tolSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tol" {
			tolSet = true
		}
	})

	if *traceOut != "" {
		runTrace(*traceOut, *trShape)
		return
	}

	if *server != "" {
		sc, err := experiments.ParseScale(*scale)
		if err != nil {
			fatal(err)
		}
		runServiceClient(*server, sc)
		return
	}

	if *gate {
		gateTol := *tol
		if !tolSet {
			gateTol = experiments.GateTolerance
		}
		runGate(*jsonPath, *baseline, gateTol)
		return
	}

	if *autotune || *plangate || *kerngate {
		sc, err := experiments.ParseScale(*scale)
		if err != nil {
			fatal(err)
		}
		if *autotune {
			if err := experiments.RunAutotune(experiments.RunOpts{Scale: sc}, os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *plangate {
			planTol := *tol
			if !tolSet {
				planTol = experiments.PlanGateTolerance
			}
			runPlanGate(sc, planTol)
		}
		if *kerngate {
			kernTol := *tol
			if !tolSet {
				kernTol = experiments.KernelSelTolerance
			}
			runKernelGate(sc, kernTol)
		}
		return
	}

	if *exp == "list" {
		fmt.Println("available experiments:")
		for _, e := range experiments.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	m, err := costmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	fmtKnob, err := spmat.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	sparseKnob, err := mpi.ParseSparseMode(*sparse)
	if err != nil {
		fatal(err)
	}
	if *algo != "" {
		if _, err := core.ParseAlgo(*algo); err != nil {
			fatal(err)
		}
	}
	if *replic < 0 {
		fatal(fmt.Errorf("-replication must be >= 0, got %d", *replic))
	}
	if *channels < 0 {
		fatal(fmt.Errorf("-channels must be >= 0, got %d", *channels))
	}
	var kernKnob localmm.Kernel
	autoKern := false
	if *kernel == "auto" {
		autoKern = true
	} else {
		var err error
		if kernKnob, err = localmm.ParseKernel(*kernel); err != nil {
			fatal(err)
		}
	}
	var mergeKnob localmm.Merger
	autoMerge := false
	if *merger == "auto" {
		autoMerge = true
	} else {
		var err error
		if mergeKnob, err = localmm.ParseMerger(*merger); err != nil {
			fatal(err)
		}
	}
	opts := experiments.RunOpts{Scale: sc, Machine: m, Threads: *threads, Pipeline: *pipeline, Format: fmtKnob, SparseComm: sparseKnob, Kernel: kernKnob, Merger: mergeKnob, AutoKernel: autoKern, AutoMerger: autoMerge, Channels: *channels, Algo: *algo, Replication: *replic, Verbose: *verbose}

	var list []*experiments.Experiment
	if *exp == "all" {
		list = experiments.List()
	} else {
		e, err := experiments.Get(*exp)
		if err != nil {
			fatal(err)
		}
		list = []*experiments.Experiment{e}
	}

	for _, e := range list {
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runTrace re-runs one pinned gate shape with the span recorder attached and
// writes the Chrome trace-event document. The run is exactly the gate's
// configuration, so the timeline shows the schedule the gate numbers measure.
func runTrace(path, shape string) {
	start := time.Now()
	rec, sum, err := experiments.RunTraceShape(shape)
	if err != nil {
		fatal(err)
	}
	if err := rec.WriteTraceFile(path); err != nil {
		fatal(err)
	}
	fmt.Printf("traced %s: %d spans across %d ranks, modeled critical path %.6gs (%v)\n",
		shape, len(rec.Spans()), sum.Ranks, sum.CriticalPathSeconds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", path)
}

// runServiceClient is the spgemmd-client mode: it drives a remote daemon
// with the service soak duty cycle (load generated workloads, one sequential
// warmup pass, then the concurrent mix) and renders the same report the
// in-process experiment produces. The daemon's knobs (p, machine, budget)
// are whatever it was started with; a warm daemon keeps its matrices and
// plans, so a second invocation shows zero probe work end to end.
func runServiceClient(base string, sc experiments.Scale) {
	start := time.Now()
	cl := &service.Client{Base: base}
	if _, err := cl.Stats(); err != nil {
		fatal(fmt.Errorf("cannot reach spgemmd at %s: %w", base, err))
	}
	rep, err := experiments.DriveService(cl, sc)
	if err != nil {
		fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("(remote soak against %s completed in %v)\n", base, time.Since(start).Round(time.Millisecond))
}

// runGate executes the pinned shapes, optionally dumps the JSON report, and
// optionally enforces the baseline comparison.
func runGate(jsonPath, baselinePath string, tol float64) {
	start := time.Now()
	rep, err := experiments.RunGate()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("perf gate (pinned fig-6/8 shapes, %v):\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %-28s %6s  %14s  %12s  %12s  %10s\n",
		"shape", "gated", "model s", "comm s", "hidden s", "MB moved")
	for _, s := range rep.Shapes {
		fmt.Printf("  %-28s %6v  %14.6g  %12.6g  %12.6g  %10.2f\n",
			s.Name, s.Gated, s.ModelSeconds, s.CommSeconds, s.HiddenCommSeconds,
			float64(s.Bytes)/1e6)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		var base experiments.GateReport
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("baseline %s: %w", baselinePath, err))
		}
		if bad := experiments.CompareGate(rep, &base, tol); len(bad) != 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "spgemm-bench: REGRESSION:", msg)
			}
			os.Exit(1)
		}
		fmt.Printf("gate passed: no gated shape regressed more than %.0f%% vs %s\n", tol*100, baselinePath)
	}
}

// runPlanGate runs the planner-vs-oracle comparison on every planner-gate
// shape and exits nonzero when the planner's pick is more than tol above the
// exhaustive sweep's best modeled critical path.
func runPlanGate(sc experiments.Scale, tol float64) {
	start := time.Now()
	bad, err := experiments.PlanGate(sc, tol)
	if err != nil {
		fatal(err)
	}
	if len(bad) != 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "spgemm-bench: PLANNER REGRESSION:", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("planner gate passed: every pick within %.0f%% of the oracle sweep's best (%v)\n",
		tol*100, time.Since(start).Round(time.Millisecond))
}

// runKernelGate runs the kernel/merger-selection comparison on every
// planner-gate shape: the planner's picks must price within tol of the
// exhaustive option sweep over measured aggregates, and a pick-vs-defaults
// differential run must be bit-identical per rank.
func runKernelGate(sc experiments.Scale, tol float64) {
	start := time.Now()
	bad, err := experiments.KernelSelGate(sc, tol)
	if err != nil {
		fatal(err)
	}
	if len(bad) != 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "spgemm-bench: KERNEL SELECTION REGRESSION:", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("kernel gate passed: every kernel/merger pick within %.0f%% of the option sweep on measured aggregates, outputs bit-identical (%v)\n",
		tol*100, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
	os.Exit(1)
}
