// Command mcl runs Markov clustering over a MatrixMarket similarity graph,
// optionally on the simulated cluster with memory-constrained batching
// (the HipMCL usage of the paper).
//
// Usage:
//
//	mcl -in graph.mtx                       # serial expansion
//	mcl -in graph.mtx -procs 16 -layers 4   # distributed expansion
//	mcl -in graph.mtx -procs 16 -mem 1e8    # with a memory budget (batching)
//	mcl -in graph.mtx -server http://127.0.0.1:8347
//	    # every expansion runs on a spgemmd daemon; iteration operands stay
//	    # resident there and repeat runs replan from its cache
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	spgemm "repro"
	"repro/internal/apps/mcl"
	"repro/internal/service"
)

func main() {
	var (
		in        = flag.String("in", "", "input MatrixMarket file (required)")
		procs     = flag.Int("procs", 0, "simulated processes (0 = serial expansion)")
		layers    = flag.Int("layers", 1, "grid layers")
		mem       = flag.Float64("mem", 0, "aggregate memory budget in bytes (0 = unlimited)")
		inflation = flag.Float64("inflation", 2, "inflation exponent")
		topk      = flag.Int("topk", 64, "entries kept per column after pruning")
		maxIter   = flag.Int("maxiter", 60, "maximum iterations")
		server    = flag.String("server", "", "base URL of a running spgemmd; expansions run there as multiply-as-a-service jobs (mutually exclusive with -procs)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	if *server != "" && *procs > 0 {
		fatal(fmt.Errorf("-server and -procs are mutually exclusive: the daemon's own -p decides the cluster size"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	a, err := spgemm.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var labels []int32
	var numClusters, iterations int
	var converged bool
	if *server != "" {
		cl := &service.Client{Base: *server}
		r, err := mcl.ClusterVia(a, mcl.Config{Inflation: *inflation, TopK: *topk, MaxIter: *maxIter}, cl.MultiplyMatrices)
		if err != nil {
			fatal(err)
		}
		labels, numClusters, iterations, converged = r.Labels, r.NumClusters, len(r.Iters), r.Converged
	} else {
		cfg := spgemm.MCLConfig{
			Inflation: *inflation,
			TopK:      *topk,
			MaxIter:   *maxIter,
			MemBytes:  int64(*mem),
		}
		if *procs > 0 {
			cfg.Cluster = spgemm.NewCluster(*procs, *layers)
		}
		res, err := spgemm.MarkovCluster(a, cfg)
		if err != nil {
			fatal(err)
		}
		labels, numClusters, iterations, converged = res.Labels, res.NumClusters, res.Iterations, res.Converged
	}
	fmt.Printf("nodes=%d clusters=%d iterations=%d converged=%v\n",
		a.Rows, numClusters, iterations, converged)

	// Print clusters by decreasing size.
	bySize := map[int32][]int32{}
	for node, c := range labels {
		bySize[c] = append(bySize[c], int32(node))
	}
	ids := make([]int32, 0, len(bySize))
	for id := range bySize {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return len(bySize[ids[a]]) > len(bySize[ids[b]]) })
	for rank, id := range ids {
		if rank >= 20 {
			fmt.Printf("... and %d more clusters\n", len(ids)-20)
			break
		}
		members := bySize[id]
		if len(members) > 12 {
			fmt.Printf("cluster %d (%d nodes): %v ...\n", rank, len(members), members[:12])
		} else {
			fmt.Printf("cluster %d (%d nodes): %v\n", rank, len(members), members)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcl:", err)
	os.Exit(1)
}
