// Command spgemmd is the multiply-as-a-service daemon: it holds distributed
// matrices resident across requests, caches planner decisions so repeat
// multiplies skip probe work, and admits concurrent jobs under a shared
// memory budget. The JSON-over-HTTP API (documented in SERVICE.md) exposes:
//
//	POST /load      make a matrix resident (wire bytes, Matrix Market text,
//	                or a server-side deterministic generator)
//	POST /plan      the (cached) planner decision for a resident pair
//	POST /multiply  plan, admit, and execute one job (?trace=1 returns the
//	                job's per-rank Chrome/Perfetto trace)
//	GET  /stats     plan-cache, probe, admission, and job counters (JSON)
//	GET  /matrices  resident matrices and their fingerprints
//	GET  /metrics   the same telemetry in Prometheus text format
//
// Usage:
//
//	spgemmd                                   # 16 ranks, Cori-KNL, :8347
//	spgemmd -p 64 -mem 64MB -machine haswell  # bigger cluster, tight budget
//	spgemmd -addr 127.0.0.1:9000 -threads 4
//	spgemmd -kernels kernels.json             # persist the recalibrated
//	    # kernel/merger cost table: loaded at boot if the file exists, saved
//	    # on SIGINT/SIGTERM, so measured-speed calibration survives restarts
//	spgemmd -tracedir traces                  # write every job's span trace
//	    # to traces/job-<id>.json
//	spgemmd -pprof                            # mount net/http/pprof under
//	    # /debug/pprof/ for live profiling
//
// Logs are structured (log/slog, text format, stderr): every completed job
// logs one line with its job ID, operand fingerprints, plan-cache outcome,
// queue wait, and duration.
//
// Clients: `spgemm-bench -server URL -exp service` drives a soak workload;
// `mcl -server URL`, the examples, and any HTTP client speak the same API.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/costmodel"
	"repro/internal/service"
)

// logger is the process-wide structured logger; the service shares it for
// its per-job lines.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8347", "listen address")
		p         = flag.Int("p", 16, "rank count every job runs on")
		machine   = flag.String("machine", "knl", "machine model: knl | haswell | knl-ht | local")
		memStr    = flag.String("mem", "", "aggregate memory budget shared by concurrent jobs, with optional suffix: 4GB, 512MB, 1e9 (empty = unconstrained)")
		threads   = flag.Int("threads", 1, "worker goroutines per rank in local kernels")
		kernels   = flag.String("kernels", "", "kernel/merger cost-table file: loaded at boot when present, saved on SIGINT/SIGTERM (empty = in-memory only, recalibration lost on exit)")
		traceDir  = flag.String("tracedir", "", "directory for per-job span traces (job-<id>.json, Chrome trace-event format); created if missing (empty = no capture)")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	m, err := costmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	mem, err := parseBytes(*memStr)
	if err != nil {
		fatal(err)
	}
	kt, err := loadKernels(*kernels)
	if err != nil {
		fatal(err)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(fmt.Errorf("-tracedir: %w", err))
		}
	}
	svc, err := service.New(service.Config{
		P: *p, Machine: m, MemBytes: mem, Threads: *threads, Kernels: kt,
		Logger: logger, TraceDir: *traceDir,
	})
	if err != nil {
		fatal(err)
	}

	if *kernels != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := saveKernels(*kernels, svc.Kernels()); err != nil {
				logger.Error("saving kernel table failed", "path", *kernels, "error", err)
				os.Exit(1)
			}
			logger.Info("kernel table saved", "path", *kernels,
				"observations", svc.Kernels().Observations())
			os.Exit(0)
		}()
	}

	handler := service.Handler(svc)
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	logger.Info("serving", "addr", *addr, "p", *p, "machine", m.Name,
		"mem_bytes", mem, "threads", *threads, "pprof", *pprofFlag, "tracedir", *traceDir)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fatal(err)
	}
}

// loadKernels reads a persisted cost table; a missing file or empty path
// yields a fresh default table (first boot).
func loadKernels(path string) (*costmodel.KernelTable, error) {
	kt := costmodel.DefaultKernelTable()
	if path == "" {
		return kt, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return kt, nil
	}
	if err != nil {
		return nil, fmt.Errorf("-kernels: %w", err)
	}
	if err := json.Unmarshal(data, kt); err != nil {
		return nil, fmt.Errorf("-kernels %s: %w", path, err)
	}
	logger.Info("kernel table loaded", "path", path,
		"observations", kt.Observations(), "fingerprint", kt.Fingerprint())
	return kt, nil
}

// saveKernels writes the table atomically (temp file + rename) so a crash
// mid-write never corrupts the previous calibration.
func saveKernels(path string, kt *costmodel.KernelTable) error {
	data, err := json.MarshalIndent(kt, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// parseBytes parses a byte count with an optional decimal suffix (KB, MB,
// GB, TB, or their KiB/MiB/… binary forms, case-insensitive); a bare number
// may use any float syntax ("1e9"). Empty means zero (unconstrained).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	mult := 1.0
	for _, suf := range []struct {
		tag string
		f   float64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12}, {"B", 1},
	} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.f
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suf.tag))
			break
		}
	}
	v, err := strconv.ParseFloat(upper, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -mem %q (want e.g. 4GB, 512MB, 1e9)", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("bad -mem %q: negative", s)
	}
	return int64(v * mult), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spgemmd:", err)
	os.Exit(1)
}
